//! Physical-quantity newtypes.
//!
//! Following the newtype guidance (C-NEWTYPE), quantities with different
//! dimensions are distinct types, so a power cannot silently be used as an
//! energy or a price. All wrappers are thin `f64` with `Copy` semantics and
//! support the arithmetic that is meaningful for the dimension.
//!
//! The ECT-Hub model uses hourly slots, so [`KiloWatt::for_one_slot`]
//! converts power to the energy delivered during one slot at a 1:1 numeric
//! ratio. That convention is what makes the paper's Eq. 4
//! (`SoC(t+1) = SoC(t) + P_BP(t)`) dimensionally sound.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value expressed in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw numeric value.
            #[inline]
            pub const fn as_f64(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted: {} > {}", lo.0, hi.0);
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` if the value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio between two quantities of the same dimension.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(v: f64) -> Self {
                Self(v)
            }
        }
    };
}

quantity!(
    /// Active power in kilowatts.
    KiloWatt,
    "kW"
);
quantity!(
    /// Energy in kilowatt-hours.
    KiloWattHour,
    "kWh"
);
quantity!(
    /// Electricity price in dollars per kilowatt-hour.
    DollarsPerKwh,
    "$/kWh"
);
quantity!(
    /// Money in dollars (positive = income, negative = expense).
    Money,
    "$"
);

impl KiloWatt {
    /// Energy delivered by this power over exactly one slot (one hour).
    #[inline]
    pub fn for_one_slot(self) -> KiloWattHour {
        KiloWattHour::new(self.0)
    }
}

impl KiloWattHour {
    /// The constant power that delivers this energy in one slot (one hour).
    #[inline]
    pub fn over_one_slot(self) -> KiloWatt {
        KiloWatt::new(self.0)
    }
}

impl Mul<DollarsPerKwh> for KiloWattHour {
    type Output = Money;
    #[inline]
    fn mul(self, price: DollarsPerKwh) -> Money {
        Money::new(self.0 * price.0)
    }
}

impl Mul<KiloWattHour> for DollarsPerKwh {
    type Output = Money;
    #[inline]
    fn mul(self, energy: KiloWattHour) -> Money {
        energy * self
    }
}

impl DollarsPerKwh {
    /// Converts a price quoted in `$ / MWh` (the unit of the paper's Fig. 5).
    #[inline]
    pub fn from_dollars_per_mwh(v: f64) -> Self {
        Self(v / 1000.0)
    }

    /// This price expressed in `$ / MWh`.
    #[inline]
    pub fn as_dollars_per_mwh(self) -> f64 {
        self.0 * 1000.0
    }
}

/// A dimensionless value constrained to `[0, 1]`.
///
/// Used for efficiencies, state-of-charge fractions and discount levels.
/// Construction validates the range (C-VALIDATE).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Ratio = Ratio(0.0);
    /// The unit ratio.
    pub const ONE: Ratio = Ratio(1.0);

    /// Creates a ratio.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EctError::OutOfRange`] if `v` is not finite or lies
    /// outside `[0, 1]`.
    pub fn new(v: f64) -> crate::Result<Self> {
        if v.is_finite() && (0.0..=1.0).contains(&v) {
            Ok(Self(v))
        } else {
            Err(crate::EctError::OutOfRange {
                what: "ratio",
                value: v,
                lo: 0.0,
                hi: 1.0,
            })
        }
    }

    /// Creates a ratio, clamping out-of-range finite values into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn saturating(v: f64) -> Self {
        assert!(!v.is_nan(), "ratio from NaN");
        Self(v.clamp(0.0, 1.0))
    }

    /// Raw value in `[0, 1]`.
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// The complementary ratio `1 - self`.
    #[inline]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Self::ZERO
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

impl Mul<f64> for Ratio {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

/// Base-station load rate `α_t ∈ [0, 1]` (Eq. 1 of the paper).
///
/// Semantically distinct from a generic [`Ratio`]: it is the fraction of the
/// station's full traffic load, and it is the quantity the traffic generator
/// produces and the power model consumes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LoadRate(f64);

impl LoadRate {
    /// An idle station.
    pub const IDLE: LoadRate = LoadRate(0.0);
    /// A fully loaded station.
    pub const FULL: LoadRate = LoadRate(1.0);

    /// Creates a load rate.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EctError::OutOfRange`] when outside `[0, 1]`.
    pub fn new(v: f64) -> crate::Result<Self> {
        if v.is_finite() && (0.0..=1.0).contains(&v) {
            Ok(Self(v))
        } else {
            Err(crate::EctError::OutOfRange {
                what: "load rate",
                value: v,
                lo: 0.0,
                hi: 1.0,
            })
        }
    }

    /// Creates a load rate, clamping finite values into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn saturating(v: f64) -> Self {
        assert!(!v.is_nan(), "load rate from NaN");
        Self(v.clamp(0.0, 1.0))
    }

    /// Raw fraction in `[0, 1]`.
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0
    }
}

impl fmt::Display for LoadRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "load {:.1}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn power_integrates_to_energy_one_to_one() {
        let p = KiloWatt::new(2.5);
        assert_eq!(p.for_one_slot(), KiloWattHour::new(2.5));
        assert_eq!(KiloWattHour::new(2.5).over_one_slot(), p);
    }

    #[test]
    fn energy_times_price_is_money() {
        let e = KiloWattHour::new(10.0);
        let pr = DollarsPerKwh::new(0.25);
        assert_eq!(e * pr, Money::new(2.5));
        assert_eq!(pr * e, Money::new(2.5));
    }

    #[test]
    fn mwh_conversion_round_trips() {
        let p = DollarsPerKwh::from_dollars_per_mwh(120.0);
        assert!((p.as_f64() - 0.12).abs() < 1e-12);
        assert!((p.as_dollars_per_mwh() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_validates_bounds() {
        assert!(Ratio::new(0.5).is_ok());
        assert!(Ratio::new(-0.1).is_err());
        assert!(Ratio::new(1.1).is_err());
        assert!(Ratio::new(f64::NAN).is_err());
        assert_eq!(Ratio::saturating(3.0), Ratio::ONE);
        assert_eq!(Ratio::saturating(-1.0), Ratio::ZERO);
    }

    #[test]
    fn ratio_complement() {
        assert!((Ratio::new(0.3).unwrap().complement().as_f64() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn load_rate_validates_bounds() {
        assert!(LoadRate::new(0.0).is_ok());
        assert!(LoadRate::new(1.0).is_ok());
        assert!(LoadRate::new(1.5).is_err());
        assert!(LoadRate::new(f64::INFINITY).is_err());
    }

    #[test]
    fn display_formats_mention_units() {
        assert!(format!("{}", KiloWatt::new(1.0)).contains("kW"));
        assert!(format!("{}", KiloWattHour::new(1.0)).contains("kWh"));
        assert!(format!("{}", DollarsPerKwh::new(1.0)).contains("$/kWh"));
        assert!(format!("{}", Money::new(1.0)).contains('$'));
        assert!(format!("{}", Ratio::ONE).contains('%'));
    }

    #[test]
    fn sum_of_quantities() {
        let total: Money = [1.0, 2.0, 3.5].iter().map(|&v| Money::new(v)).sum();
        assert_eq!(total, Money::new(6.5));
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = KiloWatt::new(1.0).clamp(KiloWatt::new(2.0), KiloWatt::new(1.0));
    }

    proptest! {
        #[test]
        fn add_sub_round_trip(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let x = KiloWattHour::new(a);
            let y = KiloWattHour::new(b);
            let back = (x + y) - y;
            prop_assert!((back.as_f64() - a).abs() < 1e-6);
        }

        #[test]
        fn saturating_ratio_in_bounds(v in -10.0f64..10.0) {
            let r = Ratio::saturating(v);
            prop_assert!((0.0..=1.0).contains(&r.as_f64()));
        }

        #[test]
        fn neg_is_involution(a in -1e6f64..1e6) {
            let m = Money::new(a);
            prop_assert_eq!(-(-m), m);
        }
    }
}
