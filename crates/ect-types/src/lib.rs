//! Common foundation types for the ECT-Hub workspace.
//!
//! The ECT-Hub system ("Towards Integrated Energy-Communication-Transportation
//! Hub", ICDCS 2024) models 5G base stations extended with battery points,
//! renewable generation and EV charging stations. This crate holds the
//! vocabulary shared by every other crate:
//!
//! * [`units`] — newtypes for physical quantities (kW, kWh, $/kWh, …) so that
//!   power and energy cannot be confused (the paper's Eq. 4 only works under
//!   the 1-slot = 1-hour convention, which these types make explicit);
//! * [`time`] — hourly [`time::SlotIndex`] arithmetic, hour-of-day /
//!   day-of-week decomposition and the four day periods used by Fig. 12;
//! * [`ids`] — typed identifiers for hubs, stations and battery points;
//! * [`rng`] — a deterministic, seedable RNG plus the statistical
//!   distributions the synthetic data generators need (Normal, Poisson,
//!   Weibull, Ornstein-Uhlenbeck);
//! * [`stats`] — descriptive statistics (summaries, quantiles, Welch's t)
//!   shared by the experiment reports;
//! * [`error`] — the shared [`error::EctError`] type.
//!
//! # Example
//!
//! ```
//! use ect_types::units::{KiloWatt, KiloWattHour};
//! use ect_types::time::SlotIndex;
//!
//! let p = KiloWatt::new(3.2);
//! // one slot is one hour, so power integrates to energy 1:1
//! let e: KiloWattHour = p.for_one_slot();
//! assert!((e.as_f64() - 3.2).abs() < 1e-12);
//! let t = SlotIndex::new(49);
//! assert_eq!(t.hour_of_day(), 1);
//! assert_eq!(t.day(), 2);
//! ```

pub mod error;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use error::{EctError, Result};
pub use ids::{BatteryPointId, HubId, StationId};
pub use time::{DayPeriod, SlotIndex, HOURS_PER_DAY, SLOTS_PER_DAY};
pub use units::{DollarsPerKwh, KiloWatt, KiloWattHour, LoadRate, Money, Ratio};
