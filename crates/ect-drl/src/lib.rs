//! ECT-DRL: deep-reinforcement-learning battery scheduling (Section IV-B).
//!
//! Given the real-time price, weather, traffic and charging-price windows
//! plus the battery state of charge (Eq. 24), the agent picks one of three
//! battery actions per hour — charge, discharge, idle — to maximise the
//! per-slot profit of Eq. 12. Training uses the Actor-Critic architecture of
//! Fig. 10 with the PPO clipped surrogate objective (Eqs. 25–28).
//!
//! * [`actor_critic`] — the shared-trunk policy/value network;
//! * [`rollout`] — trajectory buffers and GAE advantage estimation;
//! * [`ppo`] — the clipped-objective learner;
//! * [`trainer`] — sequential episode loops matching the paper's protocol
//!   (30-day episodes, random initial SoC, 500 train / 100 test);
//! * [`collector`] — batched rollout collection over the
//!   [`ect_env::vec_env::FleetEnv`] engine: lockstep fleet training with
//!   per-lane buffers, bit-identical to the sequential trainer under paired
//!   seeds;
//! * [`heuristics`] — rule-based comparators (NoBattery, price thresholds,
//!   time-of-use) and the [`heuristics::Scheduler`] abstraction;
//! * [`generalist`] — scenario-mixture training of one shared policy across
//!   heterogeneous stress worlds, with zero-shot held-out evaluation
//!   ([`generalist::ScenarioMixture`], [`generalist::train_generalist`],
//!   [`generalist::evaluate_generalist`]);
//! * [`scenario_source`] — where lane scenarios come from: fixed mixtures or
//!   domain-randomised sampling ([`scenario_source::ScenarioSource`]), plus
//!   the LRU-bounded [`scenario_source::WorldCache`] that keeps an infinite
//!   spec family memory-bounded;
//! * [`checkpoint`] — versioned JSON persistence for trained policies,
//!   carrying the observation-layout metadata a loaded generalist needs to
//!   refuse a mismatched environment.
//!
//! # Example
//!
//! Scenario curricula are pure functions of `(seed, episode)` — whichever
//! source they come from:
//!
//! ```
//! use ect_drl::generalist::ScenarioMixture;
//! use ect_drl::scenario_source::ScenarioSource;
//! use ect_data::scenario::randomized::all_stress;
//! use ect_data::scenario::scenario_library;
//!
//! let fixed = ScenarioSource::Fixed(ScenarioMixture::uniform(scenario_library(48))?);
//! let sampled = ScenarioSource::sampled(all_stress(), 48);
//! for source in [&fixed, &sampled] {
//!     let a = source.specs_for_episode(/*seed=*/ 7, /*episode=*/ 3, /*lanes=*/ 2)?;
//!     assert_eq!(a, source.specs_for_episode(7, 3, 2)?);
//! }
//! # Ok::<(), ect_types::EctError>(())
//! ```

pub mod actor_critic;
pub mod checkpoint;
pub mod collector;
pub mod generalist;
pub mod heuristics;
pub mod ppo;
pub mod rollout;
pub mod scenario_source;
pub mod trainer;

pub use actor_critic::{ActorCritic, ActorCriticConfig};
pub use checkpoint::{
    load_checkpoint, load_policy, save_checkpoint, save_policy, CheckpointMeta, PolicyCheckpoint,
    CHECKPOINT_VERSION,
};
pub use collector::{
    collect_fleet_episode, collect_shared_policy_episode, evaluate_fleet_greedy, train_fleet,
    train_fleet_overlapped, FleetFactory, UpdateOverlap,
};
pub use generalist::{
    evaluate_generalist, train_generalist, train_generalist_source, train_holdout_split,
    GeneralistConfig, MixtureFleetFactory, ScenarioMixture, HELDOUT_SCENARIOS, TRAIN_SCENARIOS,
};
pub use heuristics::{run_episode, DrlScheduler, GreedyPrice, NoBattery, Scheduler, TimeOfUse};
pub use ppo::{Ppo, PpoConfig, UpdateStats};
pub use rollout::{RolloutBuffer, Transition};
pub use scenario_source::{ScenarioSource, WorldCache};
pub use trainer::{evaluate, train, EpisodeFactory, EvalSummary, TrainerConfig, TrainingHistory};
