//! Policy checkpointing: persist trained actor-critic networks to disk.
//!
//! Training a fleet-scale PPO run is the expensive stage of the pipeline;
//! checkpoints let operators evaluate, resume or deploy policies without
//! retraining. Format: pretty JSON of the full network (weights only —
//! forward caches are skipped by construction).

use crate::actor_critic::ActorCritic;
use std::path::Path;

/// Saves a policy as JSON.
///
/// # Errors
///
/// Returns [`ect_types::EctError::InvalidConfig`] wrapping I/O or
/// serialisation failures (message carries the cause).
pub fn save_policy<P: AsRef<Path>>(policy: &ActorCritic, path: P) -> ect_types::Result<()> {
    let json = serde_json::to_string(policy).map_err(|e| {
        ect_types::EctError::InvalidConfig(format!("policy serialisation failed: {e}"))
    })?;
    std::fs::write(path.as_ref(), json).map_err(|e| {
        ect_types::EctError::InvalidConfig(format!(
            "writing checkpoint {} failed: {e}",
            path.as_ref().display()
        ))
    })
}

/// Loads a policy saved by [`save_policy`].
///
/// # Errors
///
/// Returns [`ect_types::EctError::InvalidConfig`] wrapping I/O or parse
/// failures.
pub fn load_policy<P: AsRef<Path>>(path: P) -> ect_types::Result<ActorCritic> {
    let json = std::fs::read_to_string(path.as_ref()).map_err(|e| {
        ect_types::EctError::InvalidConfig(format!(
            "reading checkpoint {} failed: {e}",
            path.as_ref().display()
        ))
    })?;
    serde_json::from_str(&json).map_err(|e| {
        ect_types::EctError::InvalidConfig(format!("policy deserialisation failed: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor_critic::ActorCriticConfig;
    use ect_types::rng::EctRng;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ect-drl-ckpt-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let mut rng = EctRng::seed_from(1);
        let policy = ActorCritic::new(12, &ActorCriticConfig::default(), &mut rng);
        let path = temp_path("roundtrip");
        save_policy(&policy, &path).unwrap();
        let restored = load_policy(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let state: Vec<f64> = (0..12).map(|i| (i as f64) / 12.0 - 0.5).collect();
        let (p1, v1) = policy.evaluate_one(&state);
        let (p2, v2) = restored.evaluate_one(&state);
        assert_eq!(v1.to_bits(), v2.to_bits());
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(restored.state_dim(), 12);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = load_policy("/nonexistent/dir/policy.json").unwrap_err();
        assert!(err.to_string().contains("reading checkpoint"));
    }

    #[test]
    fn corrupt_file_is_a_clean_error() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load_policy(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("deserialisation failed"));
    }
}
