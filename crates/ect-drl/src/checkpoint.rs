//! Policy checkpointing: persist trained actor-critic networks to disk.
//!
//! Training a fleet-scale PPO run is the expensive stage of the pipeline;
//! checkpoints let operators evaluate, resume or deploy policies without
//! retraining. Two formats coexist:
//!
//! * the legacy bare-policy JSON of [`save_policy`] / [`load_policy`]
//!   (weights only — forward caches are skipped by construction);
//! * the versioned [`PolicyCheckpoint`] envelope of [`save_checkpoint`] /
//!   [`load_checkpoint`], which additionally carries [`CheckpointMeta`] —
//!   observation dimension, [`ObsAugmentation`] setting, training scenario
//!   names and seed — so a loaded generalist policy can *refuse* an
//!   environment whose observation layout mismatches instead of panicking
//!   deep inside a matrix multiply.
//!
//! I/O and serde failures surface as [`ect_types::EctError::Io`].

use crate::actor_critic::ActorCritic;
use ect_env::env::ObsAugmentation;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current envelope version written by [`save_checkpoint`].
pub const CHECKPOINT_VERSION: u32 = 1;

/// Provenance and layout metadata stored beside the weights.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// Observation dimension the policy was trained on.
    pub obs_dim: usize,
    /// Observation augmentation active during training.
    pub augmentation: ObsAugmentation,
    /// Names of the scenarios in the training mixture (empty for a
    /// single-world specialist).
    pub scenarios: Vec<String>,
    /// Master training seed.
    pub seed: u64,
}

/// A versioned policy checkpoint: metadata envelope plus the network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyCheckpoint {
    /// Envelope format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Layout and provenance metadata.
    pub meta: CheckpointMeta,
    /// The trained network.
    pub policy: ActorCritic,
}

impl PolicyCheckpoint {
    /// Wraps a policy with metadata at the current envelope version.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::ShapeMismatch`] when `meta.obs_dim`
    /// disagrees with the policy's own state dimension.
    pub fn new(policy: ActorCritic, meta: CheckpointMeta) -> ect_types::Result<Self> {
        if meta.obs_dim != policy.state_dim() {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "checkpoint obs_dim",
                expected: policy.state_dim(),
                actual: meta.obs_dim,
            });
        }
        Ok(Self {
            version: CHECKPOINT_VERSION,
            meta,
            policy,
        })
    }

    /// Hands out the policy **only if** it matches the caller's observation
    /// dimension — the guard a generalist deployment calls with its
    /// environment's `state_dim()` before acting.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::ShapeMismatch`] on a layout mismatch.
    pub fn policy_for_obs_dim(self, obs_dim: usize) -> ect_types::Result<ActorCritic> {
        if self.meta.obs_dim != obs_dim {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "checkpoint obs_dim",
                expected: obs_dim,
                actual: self.meta.obs_dim,
            });
        }
        Ok(self.policy)
    }
}

/// Saves a bare policy as JSON (legacy format, no metadata).
///
/// # Errors
///
/// Returns [`ect_types::EctError::Io`] wrapping I/O or serialisation
/// failures (message carries the cause).
pub fn save_policy<P: AsRef<Path>>(policy: &ActorCritic, path: P) -> ect_types::Result<()> {
    let json = serde_json::to_string(policy)
        .map_err(|e| ect_types::EctError::Io(format!("policy serialisation failed: {e}")))?;
    write_checkpoint_file(path.as_ref(), &json)
}

/// Loads a policy saved by [`save_policy`] **or** unwraps one from a
/// [`save_checkpoint`] envelope (metadata is dropped; use
/// [`load_checkpoint`] to keep it and validate layouts).
///
/// # Errors
///
/// Returns [`ect_types::EctError::Io`] wrapping I/O or parse failures, and
/// [`ect_types::EctError::InvalidConfig`] for an envelope from a newer
/// format version — the version guard holds on both loaders.
pub fn load_policy<P: AsRef<Path>>(path: P) -> ect_types::Result<ActorCritic> {
    let json = read_checkpoint_file(path.as_ref())?;
    if let Ok(envelope) = serde_json::from_str::<PolicyCheckpoint>(&json) {
        check_version(&envelope)?;
        return Ok(envelope.policy);
    }
    serde_json::from_str(&json)
        .map_err(|e| ect_types::EctError::Io(format!("policy deserialisation failed: {e}")))
}

/// Saves a policy inside the versioned metadata envelope.
///
/// # Errors
///
/// Returns [`ect_types::EctError::ShapeMismatch`] when the metadata
/// disagrees with the policy's state dimension, and
/// [`ect_types::EctError::Io`] for I/O or serialisation failures.
pub fn save_checkpoint<P: AsRef<Path>>(
    policy: &ActorCritic,
    meta: CheckpointMeta,
    path: P,
) -> ect_types::Result<()> {
    let envelope = PolicyCheckpoint::new(policy.clone(), meta)?;
    let json = serde_json::to_string(&envelope)
        .map_err(|e| ect_types::EctError::Io(format!("checkpoint serialisation failed: {e}")))?;
    write_checkpoint_file(path.as_ref(), &json)
}

/// Loads a [`save_checkpoint`] envelope, refusing unknown versions.
///
/// # Errors
///
/// Returns [`ect_types::EctError::Io`] for I/O/parse failures (including a
/// legacy bare-policy file, which carries no metadata to validate against)
/// and [`ect_types::EctError::InvalidConfig`] for an unsupported version.
pub fn load_checkpoint<P: AsRef<Path>>(path: P) -> ect_types::Result<PolicyCheckpoint> {
    let json = read_checkpoint_file(path.as_ref())?;
    let envelope: PolicyCheckpoint = serde_json::from_str(&json)
        .map_err(|e| ect_types::EctError::Io(format!("checkpoint deserialisation failed: {e}")))?;
    check_version(&envelope)?;
    Ok(envelope)
}

fn check_version(envelope: &PolicyCheckpoint) -> ect_types::Result<()> {
    if envelope.version > CHECKPOINT_VERSION {
        return Err(ect_types::EctError::InvalidConfig(format!(
            "checkpoint version {} is newer than supported version {CHECKPOINT_VERSION}",
            envelope.version
        )));
    }
    Ok(())
}

fn write_checkpoint_file(path: &Path, json: &str) -> ect_types::Result<()> {
    std::fs::write(path, json).map_err(|e| {
        ect_types::EctError::Io(format!("writing checkpoint {} failed: {e}", path.display()))
    })
}

fn read_checkpoint_file(path: &Path) -> ect_types::Result<String> {
    std::fs::read_to_string(path).map_err(|e| {
        ect_types::EctError::Io(format!("reading checkpoint {} failed: {e}", path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor_critic::ActorCriticConfig;
    use ect_types::rng::EctRng;
    use ect_types::EctError;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ect-drl-ckpt-{name}-{}.json", std::process::id()))
    }

    fn policy(dim: usize) -> ActorCritic {
        let mut rng = EctRng::seed_from(1);
        ActorCritic::new(dim, &ActorCriticConfig::default(), &mut rng)
    }

    fn meta(dim: usize) -> CheckpointMeta {
        CheckpointMeta {
            obs_dim: dim,
            augmentation: ect_env::env::ObsAugmentation::SCENARIO,
            scenarios: vec!["baseline".into(), "heatwave".into()],
            seed: 0xD21,
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let policy = policy(12);
        let path = temp_path("roundtrip");
        save_policy(&policy, &path).unwrap();
        let restored = load_policy(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let state: Vec<f64> = (0..12).map(|i| (i as f64) / 12.0 - 0.5).collect();
        let (p1, v1) = policy.evaluate_one(&state);
        let (p2, v2) = restored.evaluate_one(&state);
        assert_eq!(v1.to_bits(), v2.to_bits());
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(restored.state_dim(), 12);
    }

    #[test]
    fn envelope_round_trips_with_metadata() {
        let policy = policy(10);
        let path = temp_path("envelope");
        save_checkpoint(&policy, meta(10), &path).unwrap();
        let envelope = load_checkpoint(&path).unwrap();
        assert_eq!(envelope.version, CHECKPOINT_VERSION);
        assert_eq!(envelope.meta, meta(10));

        // The legacy loader unwraps the same file transparently.
        let bare = load_policy(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bare.state_dim(), 10);

        let state: Vec<f64> = (0..10).map(|i| (i as f64) * 0.1 - 0.4).collect();
        let (p1, v1) = policy.evaluate_one(&state);
        let (p2, v2) = envelope.policy.evaluate_one(&state);
        assert_eq!(v1.to_bits(), v2.to_bits());
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mismatched_obs_dim_is_refused_not_a_panic() {
        let path = temp_path("mismatch");
        save_checkpoint(&policy(10), meta(10), &path).unwrap();
        let envelope = load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // An env with a different observation layout is refused cleanly.
        let err = envelope.clone().policy_for_obs_dim(13).unwrap_err();
        assert!(matches!(err, EctError::ShapeMismatch { .. }), "{err}");
        // The matching layout hands the policy out.
        assert_eq!(envelope.policy_for_obs_dim(10).unwrap().state_dim(), 10);
        // Inconsistent metadata is rejected at save time too.
        assert!(matches!(
            save_checkpoint(&policy(10), meta(11), temp_path("bad-meta")).unwrap_err(),
            EctError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn newer_versions_are_refused() {
        let policy = policy(8);
        let mut envelope = PolicyCheckpoint::new(policy, meta(8)).unwrap();
        envelope.version = CHECKPOINT_VERSION + 1;
        let path = temp_path("future");
        std::fs::write(&path, serde_json::to_string(&envelope).unwrap()).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        // The legacy loader must not sneak a future-format policy through.
        let legacy_err = load_policy(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("newer than supported"));
        assert!(legacy_err.to_string().contains("newer than supported"));
    }

    #[test]
    fn missing_file_is_a_clean_io_error() {
        let err = load_policy("/nonexistent/dir/policy.json").unwrap_err();
        assert!(matches!(err, EctError::Io(_)), "{err}");
        assert!(err.to_string().contains("reading checkpoint"));
        let err = load_checkpoint("/nonexistent/dir/policy.json").unwrap_err();
        assert!(matches!(err, EctError::Io(_)), "{err}");
        // Writing somewhere unwritable is an Io error, not a panic.
        let err = save_policy(&policy(4), "/nonexistent/dir/policy.json").unwrap_err();
        assert!(matches!(err, EctError::Io(_)), "{err}");
    }

    #[test]
    fn corrupt_file_is_a_clean_io_error() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        let policy_err = load_policy(&path).unwrap_err();
        let ckpt_err = load_checkpoint(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(policy_err, EctError::Io(_)), "{policy_err}");
        assert!(policy_err.to_string().contains("deserialisation failed"));
        assert!(matches!(ckpt_err, EctError::Io(_)), "{ckpt_err}");
    }
}
