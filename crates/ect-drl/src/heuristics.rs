//! Rule-based battery schedulers.
//!
//! Comparators for the DRL policy: the ablation question DESIGN.md poses is
//! "does learned scheduling beat sensible rules?". All schedulers implement
//! [`Scheduler`], so evaluation code is agnostic.

use crate::actor_critic::ActorCritic;
use ect_env::battery::BpAction;
use ect_env::env::HubEnv;

/// A battery-scheduling policy.
pub trait Scheduler {
    /// Method name for report tables.
    fn name(&self) -> &'static str;

    /// Picks the action for the current slot. `state` is the Eq. 24
    /// observation; `env` grants read access to the exogenous series (rules
    /// use the raw price rather than the normalised window).
    fn act(&mut self, state: &[f64], env: &HubEnv) -> BpAction;
}

/// Never touches the battery — the "plain base station" lower bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBattery;

impl Scheduler for NoBattery {
    fn name(&self) -> &'static str {
        "NoBattery"
    }

    fn act(&mut self, _state: &[f64], _env: &HubEnv) -> BpAction {
        BpAction::Idle
    }
}

/// Price-threshold rule: charge when the current RTP is below the low
/// threshold, discharge when above the high threshold, else idle.
#[derive(Debug, Clone, Copy)]
pub struct GreedyPrice {
    /// Charge below this price, $/kWh.
    pub low: f64,
    /// Discharge above this price, $/kWh.
    pub high: f64,
}

impl GreedyPrice {
    /// Thresholds roughly at the default RTP generator's quartiles.
    pub fn default_thresholds() -> Self {
        Self {
            low: 0.065,
            high: 0.105,
        }
    }
}

impl Scheduler for GreedyPrice {
    fn name(&self) -> &'static str {
        "GreedyPrice"
    }

    fn act(&mut self, _state: &[f64], env: &HubEnv) -> BpAction {
        let t = env.slot().min(env.episode_len() - 1);
        let price = env.inputs().rtp[t].as_f64();
        if price <= self.low {
            BpAction::Charge
        } else if price >= self.high {
            BpAction::Discharge
        } else {
            BpAction::Idle
        }
    }
}

/// Fixed time-of-use rule: charge overnight (01:00–06:00), discharge in the
/// evening peak (18:00–22:00).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeOfUse;

impl Scheduler for TimeOfUse {
    fn name(&self) -> &'static str {
        "TimeOfUse"
    }

    fn act(&mut self, _state: &[f64], env: &HubEnv) -> BpAction {
        let hour = env.slot() % 24;
        match hour {
            1..=5 => BpAction::Charge,
            18..=21 => BpAction::Discharge,
            _ => BpAction::Idle,
        }
    }
}

/// A trained DRL policy acting greedily (evaluation mode).
#[derive(Debug, Clone)]
pub struct DrlScheduler {
    policy: ActorCritic,
}

impl DrlScheduler {
    /// Wraps a trained actor-critic.
    pub fn new(policy: ActorCritic) -> Self {
        Self { policy }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &ActorCritic {
        &self.policy
    }
}

impl Scheduler for DrlScheduler {
    fn name(&self) -> &'static str {
        "ECT-DRL"
    }

    fn act(&mut self, state: &[f64], _env: &HubEnv) -> BpAction {
        self.policy.greedy_action(state)
    }
}

/// Runs one episode under a scheduler; returns `(total profit $, per-slot
/// trail)`.
pub fn run_episode<S: Scheduler + ?Sized>(
    env: &mut HubEnv,
    scheduler: &mut S,
    initial_soc: f64,
) -> (f64, Vec<ect_env::env::SlotBreakdown>) {
    let mut state = env.reset(initial_soc);
    let mut total = 0.0;
    let mut trail = Vec::with_capacity(env.episode_len());
    loop {
        let action = scheduler.act(&state, env);
        let step = env.step(action);
        total += step.reward;
        trail.push(step.breakdown);
        state = step.state;
        if step.done {
            break;
        }
    }
    (total, trail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor_critic::ActorCriticConfig;
    use ect_data::charging::Stratum;
    use ect_env::env::EpisodeInputs;
    use ect_env::hub::HubConfig;
    use ect_env::tariff::DiscountSchedule;
    use ect_types::rng::EctRng;
    use ect_types::units::{DollarsPerKwh, LoadRate};

    fn env_with_price_profile() -> HubEnv {
        let slots = 48;
        // Cheap overnight, expensive evenings.
        let rtp: Vec<DollarsPerKwh> = (0..slots)
            .map(|t| {
                let hour = t % 24;
                DollarsPerKwh::new(if (1..6).contains(&hour) {
                    0.05
                } else if (18..22).contains(&hour) {
                    0.13
                } else {
                    0.08
                })
            })
            .collect();
        let inputs = EpisodeInputs {
            rtp,
            weather: vec![
                ect_data::weather::WeatherSample {
                    solar_irradiance: 0.0,
                    wind_speed: 0.0,
                    cloud_cover: 0.0,
                };
                slots
            ],
            traffic: vec![
                ect_data::traffic::TrafficSample {
                    load_rate: LoadRate::new(0.5).unwrap(),
                    volume_gb: 40.0,
                };
                slots
            ],
            discounts: DiscountSchedule::none(slots),
            strata: vec![Stratum::AlwaysCharge; slots],
        };
        HubEnv::new(HubConfig::bare(), inputs, 4).unwrap()
    }

    #[test]
    fn greedy_price_beats_no_battery_on_a_spread() {
        let mut env = env_with_price_profile();
        let (no_batt, _) = run_episode(&mut env, &mut NoBattery, 0.5);
        let (greedy, _) = run_episode(&mut env, &mut GreedyPrice::default_thresholds(), 0.5);
        assert!(
            greedy > no_batt,
            "greedy {greedy} should beat idle {no_batt}"
        );
    }

    #[test]
    fn time_of_use_also_beats_no_battery() {
        let mut env = env_with_price_profile();
        let (no_batt, _) = run_episode(&mut env, &mut NoBattery, 0.5);
        let (tou, _) = run_episode(&mut env, &mut TimeOfUse, 0.5);
        assert!(tou > no_batt, "tou {tou} vs idle {no_batt}");
    }

    #[test]
    fn schedulers_report_names() {
        assert_eq!(NoBattery.name(), "NoBattery");
        assert_eq!(GreedyPrice::default_thresholds().name(), "GreedyPrice");
        assert_eq!(TimeOfUse.name(), "TimeOfUse");
    }

    #[test]
    fn greedy_actions_match_thresholds() {
        let mut env = env_with_price_profile();
        env.reset(0.5);
        let mut g = GreedyPrice::default_thresholds();
        // Slot 0: price 0.08 → idle.
        assert_eq!(g.act(&[], &env), BpAction::Idle);
        env.step(BpAction::Idle);
        env.step(BpAction::Idle); // now at slot 2 (price 0.05)
        assert_eq!(g.act(&[], &env), BpAction::Charge);
    }

    #[test]
    fn drl_scheduler_is_deterministic() {
        let mut rng = EctRng::seed_from(11);
        let mut env = env_with_price_profile();
        let policy = ActorCritic::new(env.state_dim(), &ActorCriticConfig::default(), &mut rng);
        let mut sched = DrlScheduler::new(policy);
        assert_eq!(sched.name(), "ECT-DRL");
        let (a, _) = run_episode(&mut env, &mut sched, 0.5);
        let (b, _) = run_episode(&mut env, &mut sched, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn run_episode_trail_covers_horizon() {
        let mut env = env_with_price_profile();
        let (_, trail) = run_episode(&mut env, &mut NoBattery, 0.5);
        assert_eq!(trail.len(), 48);
    }
}
