//! Scenario sourcing for generalist training: fixed mixtures or
//! domain-randomised sampling, plus the bounded world cache that keeps an
//! *infinite* spec family affordable.
//!
//! PR 3's generalist drew every episode's lane scenarios from the finite
//! stress library via [`ScenarioMixture`]. [`ScenarioSource`] generalises
//! the draw: the `Fixed` variant reproduces the mixture path bit for bit,
//! while `Sampled` draws fresh concrete specs from a continuous
//! [`ScenarioDistribution`] each episode — the domain-randomisation path in
//! which no two episodes share a world.
//!
//! That second path breaks the "generate each world once, re-slice forever"
//! trick (`fleet_env_for_worlds` over a handful of pre-generated worlds):
//! with an unbounded spec space the world set grows with the episode count.
//! [`WorldCache`] bounds it — an LRU-evicting spec → world map with a hard
//! capacity, so mixture training keeps its 100 % hit rate while randomised
//! training degrades to an on-the-fly generation budget with bounded memory.

use crate::generalist::ScenarioMixture;
use ect_data::dataset::{WorldConfig, WorldDataset};
use ect_data::scenario::randomized::ScenarioDistribution;
use ect_data::scenario::ScenarioSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The sampled half of a [`ScenarioSource`]: a continuous distribution plus
/// the horizon its fractional windows are laid out against.
///
/// (A named payload struct, not a struct variant, so the source serialises
/// through the workspace's externally-tagged serde stack — the same idiom as
/// `ScenarioModifier`.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledScenarios {
    /// The parameter-range family specs are drawn from.
    pub distribution: ScenarioDistribution,
    /// Horizon the sampled specs target (must match the worlds built from
    /// them).
    pub horizon: usize,
}

/// Where a generalist trainer's per-episode lane scenarios come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioSource {
    /// Weighted draws from a finite spec set — the PR 3 mixture path,
    /// reproduced bit for bit ([`ScenarioMixture::assignment`] drives the
    /// lane assignment exactly as before).
    Fixed(ScenarioMixture),
    /// Fresh specs sampled from a continuous distribution every episode
    /// (boxed: the distribution is an order of magnitude larger than the
    /// mixture handle).
    Sampled(Box<SampledScenarios>),
}

impl ScenarioSource {
    /// Convenience constructor for the sampled variant.
    pub fn sampled(distribution: ScenarioDistribution, horizon: usize) -> Self {
        ScenarioSource::Sampled(Box::new(SampledScenarios {
            distribution,
            horizon,
        }))
    }
}

impl ScenarioSource {
    /// Validates the source.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for an invalid
    /// distribution or a zero sampling horizon (`Fixed` mixtures are
    /// validated at construction).
    pub fn validate(&self) -> ect_types::Result<()> {
        match self {
            ScenarioSource::Fixed(_) => Ok(()),
            ScenarioSource::Sampled(sampled) => {
                sampled.distribution.validate()?;
                if sampled.horizon == 0 {
                    return Err(ect_types::EctError::InvalidConfig(
                        "sampled scenario source needs a non-empty horizon".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// The per-lane specs of one episode — a pure function of
    /// `(seed, episode)`: both variants derive every draw from those two
    /// values alone, so curricula replay identically regardless of any other
    /// RNG consumption.
    ///
    /// # Errors
    ///
    /// Propagates validation failures ([`ScenarioSource::validate`]).
    pub fn specs_for_episode(
        &self,
        seed: u64,
        episode: usize,
        lanes: usize,
    ) -> ect_types::Result<Vec<ScenarioSpec>> {
        match self {
            ScenarioSource::Fixed(mixture) => Ok(mixture
                .assignment(seed, episode, lanes)
                .into_iter()
                .map(|idx| mixture.spec(idx).clone())
                .collect()),
            ScenarioSource::Sampled(sampled) => {
                sampled
                    .distribution
                    .sample_specs(seed, episode, lanes, sampled.horizon)
            }
        }
    }

    /// Names describing what the source trains on — the fixed specs'
    /// names, or the distribution's name for the sampled family.
    pub fn scenario_names(&self) -> Vec<String> {
        match self {
            ScenarioSource::Fixed(mixture) => mixture
                .entries()
                .iter()
                .map(|(spec, _)| spec.name.clone())
                .collect(),
            ScenarioSource::Sampled(sampled) => vec![sampled.distribution.name.clone()],
        }
    }
}

/// A bounded spec → world cache with least-recently-used eviction.
///
/// [`WorldCache::world_for`] returns the cached
/// [`WorldDataset`] for a [`ScenarioSpec`] or generates it on miss; when the
/// cache is full the least-recently-used entry is evicted first. Returned
/// worlds are `Arc`-shared, so an evicted world stays alive for as long as a
/// caller still holds it — eviction bounds the *cache's* memory, it never
/// invalidates a fleet that is mid-episode. Lanes handed clones of one `Arc`
/// also keep the pointer-identity RTP dedupe of
/// [`fleet_env_for_worlds`](ect_env::fleet::fleet_env_for_worlds) working.
///
/// The lookup is a linear scan: capacities are small (tens of worlds, each
/// megabytes of series data), so a hash map would optimise the wrong cost.
#[derive(Debug, Clone)]
pub struct WorldCache {
    config: WorldConfig,
    capacity: usize,
    tick: u64,
    generations: usize,
    hits: usize,
    entries: Vec<CacheEntry>,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    spec: ScenarioSpec,
    world: Arc<WorldDataset>,
    last_used: u64,
}

impl WorldCache {
    /// A cache generating worlds from `config`, holding at most `capacity`
    /// of them at a time.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for a zero capacity.
    pub fn new(config: WorldConfig, capacity: usize) -> ect_types::Result<Self> {
        if capacity == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "world cache needs capacity for at least one world".into(),
            ));
        }
        Ok(Self {
            config,
            capacity,
            tick: 0,
            generations: 0,
            hits: 0,
            entries: Vec::new(),
        })
    }

    /// The world for one spec: cached if present, generated (and cached,
    /// evicting the least-recently-used entry when full) otherwise.
    ///
    /// # Errors
    ///
    /// Propagates world-generation failures.
    pub fn world_for(&mut self, spec: &ScenarioSpec) -> ect_types::Result<Arc<WorldDataset>> {
        self.tick += 1;
        if let Some(entry) = self.entries.iter_mut().find(|e| &e.spec == spec) {
            entry.last_used = self.tick;
            self.hits += 1;
            return Ok(Arc::clone(&entry.world));
        }
        let world = Arc::new(WorldDataset::generate_scenario(self.config.clone(), spec)?);
        self.generations += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("a full cache is non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push(CacheEntry {
            spec: spec.clone(),
            world: Arc::clone(&world),
            last_used: self.tick,
        });
        Ok(world)
    }

    /// The worlds for a whole lane assignment, resolved through the cache in
    /// order. Collect these **before** building a fleet: the returned `Arc`s
    /// keep every lane's world alive even if a later lookup evicts it.
    ///
    /// # Errors
    ///
    /// Propagates world-generation failures.
    pub fn worlds_for(
        &mut self,
        specs: &[&ScenarioSpec],
    ) -> ect_types::Result<Vec<Arc<WorldDataset>>> {
        specs.iter().map(|spec| self.world_for(spec)).collect()
    }

    /// Worlds currently cached (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Worlds generated so far (cache misses) — the on-the-fly generation
    /// budget actually spent.
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// The world configuration the cache generates from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ect_data::scenario::randomized::{all_stress, outage_band};
    use ect_data::scenario::{scenario_library, ScenarioSpec};
    use proptest::prelude::*;

    const HORIZON: usize = 24 * 4;

    fn tiny_config() -> WorldConfig {
        WorldConfig {
            num_hubs: 1,
            horizon_slots: HORIZON,
            ..WorldConfig::default()
        }
    }

    #[test]
    fn fixed_source_reproduces_the_mixture_assignment() {
        let mixture = ScenarioMixture::uniform(scenario_library(HORIZON)).unwrap();
        let source = ScenarioSource::Fixed(mixture.clone());
        source.validate().unwrap();
        for episode in 0..16 {
            let specs = source.specs_for_episode(7, episode, 3).unwrap();
            let assignment = mixture.assignment(7, episode, 3);
            assert_eq!(specs.len(), 3);
            for (spec, idx) in specs.iter().zip(assignment) {
                assert_eq!(spec, mixture.spec(idx), "episode {episode}");
            }
        }
        assert_eq!(source.scenario_names().len(), mixture.len());
    }

    #[test]
    fn sampled_source_is_deterministic_and_validates() {
        let source = ScenarioSource::sampled(all_stress(), HORIZON);
        source.validate().unwrap();
        let a = source.specs_for_episode(11, 3, 4).unwrap();
        let b = source.specs_for_episode(11, 3, 4).unwrap();
        assert_eq!(a, b);
        for spec in &a {
            spec.validate(HORIZON).unwrap();
        }
        assert_eq!(source.scenario_names(), vec!["all-stress".to_string()]);

        // Degenerate sources are refused.
        assert!(ScenarioSource::sampled(all_stress(), 0).validate().is_err());
        let mut inverted = all_stress();
        inverted.outage_fraction = ect_data::scenario::randomized::ParamRange::new(0.3, 0.1);
        assert!(ScenarioSource::sampled(inverted, HORIZON)
            .validate()
            .is_err());
    }

    #[test]
    fn cache_hits_on_repeat_and_evicts_least_recently_used() {
        let mut cache = WorldCache::new(tiny_config(), 2).unwrap();
        assert!(cache.is_empty());
        let baseline = ScenarioSpec::baseline();
        let outage = outage_band()
            .severity_spec(
                ect_data::scenario::randomized::StressAxis::Outage,
                1.0,
                HORIZON,
            )
            .unwrap();
        let surge = all_stress().sample_spec(5, 0, HORIZON).unwrap();

        let w1 = cache.world_for(&baseline).unwrap();
        let w1_again = cache.world_for(&baseline).unwrap();
        assert!(Arc::ptr_eq(&w1, &w1_again), "hit must share the Arc");
        assert_eq!(cache.generations(), 1);
        assert_eq!(cache.hits(), 1);

        cache.world_for(&outage).unwrap();
        assert_eq!(cache.len(), 2);

        // Touch baseline so the outage world is the LRU victim.
        cache.world_for(&baseline).unwrap();
        cache.world_for(&surge).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.generations(), 3);

        // Baseline survived (hit), the outage world was evicted (miss).
        cache.world_for(&baseline).unwrap();
        assert_eq!(cache.generations(), 3);
        cache.world_for(&outage).unwrap();
        assert_eq!(cache.generations(), 4);

        // An evicted world stays alive through the caller's Arc.
        assert_eq!(w1.horizon(), HORIZON);
        assert!(WorldCache::new(tiny_config(), 0).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Satellite contract: the cache never exceeds its configured
        /// capacity, whatever the lookup sequence.
        #[test]
        fn cache_never_exceeds_capacity(
            capacity in 1usize..4,
            picks in proptest::collection::vec(0usize..6, 1..24),
        ) {
            let specs: Vec<ScenarioSpec> = (0..6)
                .map(|i| all_stress().sample_spec(23, i, HORIZON).unwrap())
                .collect();
            let mut cache = WorldCache::new(tiny_config(), capacity).unwrap();
            for &pick in &picks {
                cache.world_for(&specs[pick]).unwrap();
                prop_assert!(cache.len() <= cache.capacity());
            }
            let distinct = {
                let mut seen: Vec<usize> = picks.clone();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            };
            prop_assert!(cache.generations() >= distinct.min(capacity));
            prop_assert_eq!(cache.hits() + cache.generations(), picks.len());
        }
    }
}
