//! Generalist training: one policy across a *mixture* of scenario worlds.
//!
//! The per-scenario grid (`run_scenario_grid` in `ect-core`) trains a
//! specialist policy inside each stress world. This module trains a single
//! **generalist** instead: every episode, each lane of a batched
//! [`FleetEnv`] is reassigned a scenario drawn from a weighted
//! [`ScenarioMixture`], all lanes share one actor-critic (the batched
//! forward pass of [`collect_shared_policy_episode`]), and the PPO update
//! consumes the concatenated per-lane buffers. Conditioning on *which*
//! world a lane lives in rides the
//! [`ObsAugmentation`](ect_env::env::ObsAugmentation) scenario-feature
//! block of the observation path.
//!
//! Generalisation is measured zero-shot: [`evaluate_generalist`] runs the
//! trained policy greedily on scenarios it never trained on, and
//! [`train_holdout_split`] carves the stress library into disjoint
//! train/held-out sets for exactly that protocol.
//!
//! Determinism: mixture assignments derive from `(seed, episode)` alone —
//! independent of how much RNG the training loop itself consumed — so a
//! fixed seed reproduces the same curriculum bit for bit.

use crate::actor_critic::ActorCritic;
use crate::collector::collect_shared_policy_episode;
use crate::ppo::Ppo;
use crate::rollout::RolloutBuffer;
use crate::scenario_source::ScenarioSource;
use crate::trainer::{EvalSummary, TrainerConfig, TrainingHistory};
use ect_data::scenario::{scenario_library, ScenarioSpec};
use ect_env::battery::BpAction;
use ect_env::vec_env::FleetEnv;
use ect_nn::matrix::Matrix;
use ect_types::rng::EctRng;
use ect_types::time::SLOTS_PER_DAY;
use serde::{Deserialize, Serialize};

/// Seed-stream separator for mixture assignments (decorrelated from lane
/// action/strata streams).
const MIX_SEED_STREAM: u64 = 0x9E4E_12A1;

/// Seed-stream separator for per-lane RNGs (mirrors the per-hub lane
/// seeding of the specialist fleet path).
const LANE_SEED_STREAM: u64 = 0x6E4A_11E5;

/// Library scenarios a generalist trains on (see [`train_holdout_split`]).
pub const TRAIN_SCENARIOS: [&str; 4] = [
    "baseline",
    "heatwave",
    "ev-surge-weekend",
    "traffic-flashcrowd",
];

/// Library scenarios held out for zero-shot evaluation — disjoint from
/// [`TRAIN_SCENARIOS`], chosen so every held-out world stresses a signal
/// combination the training mixture never shows (renewable collapse, price
/// scarcity, scripted outages).
pub const HELDOUT_SCENARIOS: [&str; 3] = ["winter-storm", "rtp-price-spike", "rolling-blackout"];

/// A weighted set of scenario specs with deterministic per-episode lane
/// assignment.
///
/// # Example
///
/// ```
/// use ect_drl::generalist::ScenarioMixture;
/// use ect_data::scenario::scenario_library;
///
/// let mixture = ScenarioMixture::uniform(scenario_library(24 * 7))?;
/// let a = mixture.assignment(7, 0, 4);
/// assert_eq!(a, mixture.assignment(7, 0, 4)); // deterministic per (seed, episode)
/// assert!(a.iter().all(|&idx| idx < mixture.len()));
/// # Ok::<(), ect_types::EctError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMixture {
    entries: Vec<(ScenarioSpec, f64)>,
}

impl ScenarioMixture {
    /// Creates a mixture from `(spec, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for an empty mixture,
    /// a non-finite/negative weight, or all-zero total weight.
    pub fn new(entries: Vec<(ScenarioSpec, f64)>) -> ect_types::Result<Self> {
        if entries.is_empty() {
            return Err(ect_types::EctError::InvalidConfig(
                "a scenario mixture needs at least one spec".into(),
            ));
        }
        let mut total = 0.0;
        for (spec, weight) in &entries {
            if !weight.is_finite() || *weight < 0.0 {
                return Err(ect_types::EctError::InvalidConfig(format!(
                    "mixture weight {weight} for '{}' must be finite and non-negative",
                    spec.name
                )));
            }
            total += weight;
        }
        if total <= 0.0 {
            return Err(ect_types::EctError::InvalidConfig(
                "mixture weights sum to zero".into(),
            ));
        }
        Ok(Self { entries })
    }

    /// An equal-weight mixture over the given specs.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for an empty list.
    pub fn uniform(specs: Vec<ScenarioSpec>) -> ect_types::Result<Self> {
        Self::new(specs.into_iter().map(|spec| (spec, 1.0)).collect())
    }

    /// Number of specs in the mixture.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the mixture holds no specs (unreachable through the
    /// validated constructors).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The spec at one mixture slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn spec(&self, idx: usize) -> &ScenarioSpec {
        &self.entries[idx].0
    }

    /// The `(spec, weight)` entries.
    pub fn entries(&self) -> &[(ScenarioSpec, f64)] {
        &self.entries
    }

    /// Deterministic per-episode lane assignment: lane `i` of episode
    /// `episode` runs `self.spec(assignment[i])`.
    ///
    /// The draw derives from `(seed, episode)` alone, so curricula are
    /// reproducible and independent of training-loop RNG consumption.
    pub fn assignment(&self, seed: u64, episode: usize, lanes: usize) -> Vec<usize> {
        let weights: Vec<f64> = self.entries.iter().map(|(_, w)| *w).collect();
        let mut rng = EctRng::seed_from(seed ^ MIX_SEED_STREAM).fork(episode as u64);
        (0..lanes).map(|_| rng.categorical(&weights)).collect()
    }
}

/// Splits the stress library at `horizon` into the training mixture specs
/// and the disjoint held-out evaluation specs
/// ([`TRAIN_SCENARIOS`] / [`HELDOUT_SCENARIOS`]).
///
/// # Panics
///
/// Panics if the library ever stops covering the named split (a compile-
/// time-adjacent invariant, exercised by tests).
pub fn train_holdout_split(horizon: usize) -> (Vec<ScenarioSpec>, Vec<ScenarioSpec>) {
    let library = scenario_library(horizon);
    let pick = |names: &[&str]| -> Vec<ScenarioSpec> {
        names
            .iter()
            .map(|&name| {
                library
                    .iter()
                    .find(|spec| spec.name == name)
                    .unwrap_or_else(|| panic!("scenario '{name}' missing from the library"))
                    .clone()
            })
            .collect()
    };
    (pick(&TRAIN_SCENARIOS), pick(&HELDOUT_SCENARIOS))
}

/// Anything that can build a lockstep fleet whose lane `i` runs the mixture
/// spec `assignment[i]` — the generalist counterpart of
/// [`crate::collector::FleetFactory`].
///
/// Implemented for closures
/// `FnMut(usize, &[&ScenarioSpec], &mut [EctRng]) -> Result<FleetEnv>`; the
/// `usize` is the episode index and `rngs[i]` is lane `i`'s stream.
pub trait MixtureFleetFactory {
    /// Builds the fleet for one episode under the given per-lane specs.
    ///
    /// # Errors
    ///
    /// Propagates environment construction failures.
    fn make(
        &mut self,
        episode: usize,
        specs: &[&ScenarioSpec],
        rngs: &mut [EctRng],
    ) -> ect_types::Result<FleetEnv>;
}

impl<F> MixtureFleetFactory for F
where
    F: FnMut(usize, &[&ScenarioSpec], &mut [EctRng]) -> ect_types::Result<FleetEnv>,
{
    fn make(
        &mut self,
        episode: usize,
        specs: &[&ScenarioSpec],
        rngs: &mut [EctRng],
    ) -> ect_types::Result<FleetEnv> {
        self(episode, specs, rngs)
    }
}

/// Generalist training budget: one shared policy over `lanes` mixture lanes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralistConfig {
    /// Episode budget, PPO hyper-parameters, network sizes and master seed.
    /// `episodes_per_update` counts *fleet* episodes (each contributing
    /// `lanes` trajectories to the update).
    pub trainer: TrainerConfig,
    /// Lockstep lanes per episode (each reassigned a mixture spec).
    pub lanes: usize,
}

impl GeneralistConfig {
    /// A reduced budget for tests and quick experiments.
    pub fn quick(episodes: usize, lanes: usize) -> Self {
        Self {
            trainer: TrainerConfig::quick(episodes),
            lanes,
        }
    }

    /// Validates the budget.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for zero lanes or
    /// episodes, and propagates PPO validation failures.
    pub fn validate(&self) -> ect_types::Result<()> {
        if self.lanes == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "generalist training needs at least one lane".into(),
            ));
        }
        if self.trainer.episodes == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "generalist training needs at least one episode".into(),
            ));
        }
        self.trainer.ppo.validate()
    }

    fn lane_rngs(&self) -> Vec<EctRng> {
        (0..self.lanes as u64)
            .map(|lane| EctRng::seed_from(self.trainer.seed ^ (lane << 32) ^ LANE_SEED_STREAM))
            .collect()
    }
}

/// Trains **one shared policy** over lockstep mixture episodes.
///
/// Per episode: the mixture assigns each lane a scenario
/// ([`ScenarioMixture::assignment`]), the factory builds the heterogeneous
/// fleet, [`collect_shared_policy_episode`] amortises the forward pass over
/// all lanes, and every `episodes_per_update` episodes the PPO learner
/// consumes the concatenated per-lane buffers (episode boundaries reset the
/// GAE recursion, so concatenation is safe).
///
/// The recorded [`TrainingHistory`] carries the per-episode return
/// **averaged across lanes** — the mixture-level learning curve.
///
/// # Errors
///
/// Propagates config validation, factory, environment and PPO errors, and
/// rejects a factory whose lane count disagrees with the config.
pub fn train_generalist<F: MixtureFleetFactory>(
    config: &GeneralistConfig,
    mixture: &ScenarioMixture,
    factory: F,
) -> ect_types::Result<(ActorCritic, TrainingHistory)> {
    train_generalist_source(config, &ScenarioSource::Fixed(mixture.clone()), factory)
}

/// [`train_generalist`] over an arbitrary [`ScenarioSource`]: the `Fixed`
/// variant reproduces the mixture path bit for bit (same `(seed, episode)`
/// assignment stream), while `Sampled` trains on fresh domain-randomised
/// specs every episode — the infinite-family curriculum. Pair the sampled
/// path with a [`WorldCache`](crate::scenario_source::WorldCache)-backed
/// factory so world generation stays memory-bounded.
///
/// # Errors
///
/// As [`train_generalist`], plus source validation failures.
pub fn train_generalist_source<F: MixtureFleetFactory>(
    config: &GeneralistConfig,
    source: &ScenarioSource,
    mut factory: F,
) -> ect_types::Result<(ActorCritic, TrainingHistory)> {
    config.validate()?;
    source.validate()?;
    let n = config.lanes;
    let seed = config.trainer.seed;
    let mut master = EctRng::seed_from(seed);
    let mut rngs = config.lane_rngs();

    // Probe the state dimension from episode 0 on forked streams (the forks
    // leave the real lane streams untouched).
    let episode_specs = source.specs_for_episode(seed, 0, n)?;
    let specs: Vec<&ScenarioSpec> = episode_specs.iter().collect();
    let mut probe_rngs: Vec<EctRng> = rngs.iter().map(|r| r.fork(0)).collect();
    let probe = factory.make(0, &specs, &mut probe_rngs)?;
    let state_dim = probe.state_dim();
    if probe.num_lanes() != n {
        return Err(ect_types::EctError::ShapeMismatch {
            context: "generalist lanes",
            expected: n,
            actual: probe.num_lanes(),
        });
    }
    drop(probe);

    let mut policy = ActorCritic::new(state_dim, &config.trainer.net, &mut master);
    let mut ppo = Ppo::new(config.trainer.ppo.clone())?;
    let mut history = TrainingHistory::default();
    let mut buffers = vec![RolloutBuffer::new(); n];
    let mut combined = RolloutBuffer::new();
    let mut initial_soc = vec![0.0; n];

    let episodes = config.trainer.episodes;
    let per_update = config.trainer.episodes_per_update.max(1);
    // One `ppo.collect` span per episode window, closed around each
    // `ppo.update` — the per-window collect/update split.
    let mut collect_span = Some(ect_obs::span("ppo.collect"));
    for episode in 0..episodes {
        let episode_specs = source.specs_for_episode(seed, episode, n)?;
        let specs: Vec<&ScenarioSpec> = episode_specs.iter().collect();
        let mut fleet = factory.make(episode, &specs, &mut rngs)?;
        if fleet.num_lanes() != n {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "generalist lanes",
                expected: n,
                actual: fleet.num_lanes(),
            });
        }
        for (soc, rng) in initial_soc.iter_mut().zip(rngs.iter_mut()) {
            *soc = rng.uniform(); // the paper randomises episode SoC
        }
        let returns = collect_shared_policy_episode(
            &mut fleet,
            &policy,
            &mut rngs,
            &mut buffers,
            &initial_soc,
        );
        history
            .episode_returns
            .push(returns.iter().sum::<f64>() / n as f64);

        if (episode + 1) % per_update == 0 {
            collect_span.take();
            let update_span = ect_obs::span("ppo.update");
            for buffer in &mut buffers {
                for t in buffer.transitions() {
                    combined.push(t.clone());
                }
                buffer.clear();
            }
            let stats = ppo.update(&mut policy, &combined, &mut master)?;
            history.update_stats.push(stats);
            combined.clear();
            drop(update_span);
            if episode + 1 < episodes {
                collect_span = Some(ect_obs::span("ppo.collect"));
            }
        }
    }
    drop(collect_span);
    if buffers.iter().any(|b| !b.is_empty()) {
        let _update_span = ect_obs::span("ppo.update");
        for buffer in &mut buffers {
            for t in buffer.transitions() {
                combined.push(t.clone());
            }
            buffer.clear();
        }
        let stats = ppo.update(&mut policy, &combined, &mut master)?;
        history.update_stats.push(stats);
    }
    Ok((policy, history))
}

/// Zero-shot greedy evaluation of a (generalist) policy on **one** scenario:
/// every lane of every episode runs `spec`, actions come from the batched
/// argmax of the shared policy, and the summary aggregates over all
/// `lanes × episodes` trajectories.
///
/// The returned [`EvalSummary`] is **lane-flattened**, unlike the
/// single-hub trainer's: `avg_episode_profit` is the mean profit per
/// *trajectory* (one lane's episode, total ÷ `episodes × lanes`) and
/// `daily_rewards` holds one row per `(episode, lane)` pair, episode-major
/// — `episodes × lanes` rows in total. `avg_daily_reward` keeps its usual
/// meaning (total ÷ total days) and is the cross-path comparison metric.
///
/// The factory receives the same per-lane spec list shape as training, so
/// one factory serves both paths.
///
/// # Errors
///
/// Propagates factory failures; rejects zero lanes or episodes.
pub fn evaluate_generalist<F: MixtureFleetFactory>(
    policy: &ActorCritic,
    spec: &ScenarioSpec,
    mut factory: F,
    episodes: usize,
    lanes: usize,
    seed: u64,
) -> ect_types::Result<EvalSummary> {
    if lanes == 0 || episodes == 0 {
        return Err(ect_types::EctError::InvalidConfig(
            "generalist evaluation needs at least one lane and one episode".into(),
        ));
    }
    let mut rngs: Vec<EctRng> = (0..lanes as u64)
        .map(|lane| EctRng::seed_from(seed ^ (lane << 32) ^ LANE_SEED_STREAM))
        .collect();
    let specs: Vec<&ScenarioSpec> = vec![spec; lanes];
    let mut summary = EvalSummary::default();
    let mut total = 0.0;
    let mut total_days = 0usize;
    let mut initial_soc = vec![0.0; lanes];
    let mut actions = vec![BpAction::Idle; lanes];

    for episode in 0..episodes {
        let mut fleet = factory.make(episode, &specs, &mut rngs)?;
        if fleet.num_lanes() != lanes {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "generalist evaluation lanes",
                expected: lanes,
                actual: fleet.num_lanes(),
            });
        }
        let dim = fleet.state_dim();
        for (soc, rng) in initial_soc.iter_mut().zip(rngs.iter_mut()) {
            *soc = rng.uniform();
        }
        fleet.reset(&initial_soc);
        let mut slot_rewards: Vec<Vec<f64>> = vec![Vec::with_capacity(fleet.horizon()); lanes];
        let mut states = Matrix::from_vec(lanes, dim, fleet.obs().to_vec());
        loop {
            // One batched greedy forward pass for every lane.
            let (prob_rows, _) = policy.infer(&states);
            for (lane, action) in actions.iter_mut().enumerate() {
                let row = [
                    prob_rows[(lane, 0)],
                    prob_rows[(lane, 1)],
                    prob_rows[(lane, 2)],
                ];
                let idx = (0..3)
                    .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                    .expect("three actions");
                *action = BpAction::from_index(idx);
            }
            let step = fleet.step_batch(&actions);
            for (lane_rewards, &reward) in slot_rewards.iter_mut().zip(step.rewards) {
                lane_rewards.push(reward);
            }
            if step.done {
                break;
            }
            states.as_mut_slice().copy_from_slice(fleet.obs());
        }
        for lane_rewards in &slot_rewards {
            total += lane_rewards.iter().sum::<f64>();
            let daily: Vec<f64> = lane_rewards
                .chunks(SLOTS_PER_DAY)
                .map(|chunk| chunk.iter().sum())
                .collect();
            total_days += daily.len();
            summary.daily_rewards.push(daily);
        }
    }
    summary.avg_episode_profit = total / (episodes * lanes) as f64;
    summary.avg_daily_reward = total / total_days.max(1) as f64;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ect_data::charging::Stratum;
    use ect_data::scenario::SCENARIO_NAMES;
    use ect_env::env::{EpisodeInputs, HubEnv, ObsAugmentation};
    use ect_env::hub::HubConfig;
    use ect_env::tariff::DiscountSchedule;
    use ect_types::units::{DollarsPerKwh, LoadRate};
    use proptest::prelude::*;

    /// A toy scenario-shaped world: the spec's traffic amplitude feature
    /// scales the flat price, so lanes genuinely differ per spec.
    fn toy_env(slots: usize, spec: &ScenarioSpec, aug: &ObsAugmentation) -> HubEnv {
        let bump: f64 = spec.feature_vector(slots).iter().sum::<f64>() * 0.01;
        let rtp: Vec<DollarsPerKwh> = (0..slots)
            .map(|t| {
                let base = if (t / 12) % 2 == 0 { 0.04 } else { 0.13 };
                DollarsPerKwh::new(base + bump.abs())
            })
            .collect();
        let inputs = EpisodeInputs {
            rtp,
            weather: vec![
                ect_data::weather::WeatherSample {
                    solar_irradiance: 0.0,
                    wind_speed: 0.0,
                    cloud_cover: 0.0,
                };
                slots
            ],
            traffic: vec![
                ect_data::traffic::TrafficSample {
                    load_rate: LoadRate::new(0.4).unwrap(),
                    volume_gb: 30.0,
                };
                slots
            ],
            discounts: DiscountSchedule::none(slots),
            strata: vec![Stratum::AlwaysCharge; slots],
        };
        HubEnv::new(HubConfig::bare(), inputs, 6)
            .unwrap()
            .with_augmentation(aug.features_for(spec, slots))
    }

    fn toy_factory(
        slots: usize,
        aug: ObsAugmentation,
    ) -> impl FnMut(usize, &[&ScenarioSpec], &mut [EctRng]) -> ect_types::Result<FleetEnv> {
        move |_episode, specs, _rngs| {
            FleetEnv::from_envs(
                specs
                    .iter()
                    .map(|spec| toy_env(slots, spec, &aug))
                    .collect(),
            )
        }
    }

    fn library_mixture(slots: usize) -> ScenarioMixture {
        ScenarioMixture::uniform(scenario_library(slots)).unwrap()
    }

    #[test]
    fn mixture_validates_weights() {
        assert!(ScenarioMixture::new(Vec::new()).is_err());
        assert!(ScenarioMixture::new(vec![(ScenarioSpec::baseline(), -1.0)]).is_err());
        assert!(ScenarioMixture::new(vec![(ScenarioSpec::baseline(), f64::NAN)]).is_err());
        assert!(ScenarioMixture::new(vec![(ScenarioSpec::baseline(), 0.0)]).is_err());
        let mixture = ScenarioMixture::uniform(scenario_library(48)).unwrap();
        assert_eq!(mixture.len(), SCENARIO_NAMES.len());
        assert!(!mixture.is_empty());
        assert_eq!(mixture.spec(0).name, "baseline");
        assert_eq!(mixture.entries().len(), mixture.len());
    }

    #[test]
    fn split_is_disjoint_and_covers_the_library() {
        let (train, heldout) = train_holdout_split(24 * 7);
        assert_eq!(train.len() + heldout.len(), SCENARIO_NAMES.len());
        for t in &train {
            assert!(
                heldout.iter().all(|h| h.name != t.name),
                "'{}' in both splits",
                t.name
            );
        }
        assert!(train.iter().any(|s| s.is_baseline()));
        assert!(heldout.iter().all(|s| !s.is_baseline()));
    }

    #[test]
    fn generalist_training_is_deterministic_per_seed() {
        let slots = 48;
        let mixture = library_mixture(slots);
        let config = GeneralistConfig::quick(4, 3);
        let (p1, h1) = train_generalist(
            &config,
            &mixture,
            toy_factory(slots, ObsAugmentation::SCENARIO),
        )
        .unwrap();
        let (p2, h2) = train_generalist(
            &config,
            &mixture,
            toy_factory(slots, ObsAugmentation::SCENARIO),
        )
        .unwrap();
        assert_eq!(h1.episode_returns, h2.episode_returns);
        let probe: Vec<f64> = (0..p1.state_dim())
            .map(|i| (i as f64 * 0.31).sin())
            .collect();
        let (a, va) = p1.evaluate_one(&probe);
        let (b, vb) = p2.evaluate_one(&probe);
        assert_eq!(va.to_bits(), vb.to_bits());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The augmented state is wider than the plain Eq. 24 layout.
        assert_eq!(
            p1.state_dim(),
            5 * 6 + 1 + ect_data::scenario::SCENARIO_FEATURE_DIM
        );
        assert_eq!(h1.episode_returns.len(), 4);
        assert!(!h1.update_stats.is_empty());
    }

    #[test]
    fn generalist_zero_shot_evaluation_is_finite_and_deterministic() {
        let slots = 48;
        let mixture = library_mixture(slots);
        let config = GeneralistConfig::quick(2, 2);
        let aug = ObsAugmentation::SCENARIO;
        let (policy, _) = train_generalist(&config, &mixture, toy_factory(slots, aug)).unwrap();
        let (_, heldout) = train_holdout_split(slots);
        for spec in &heldout {
            let a = evaluate_generalist(&policy, spec, toy_factory(slots, aug), 2, 2, 99).unwrap();
            let b = evaluate_generalist(&policy, spec, toy_factory(slots, aug), 2, 2, 99).unwrap();
            assert!(a.avg_daily_reward.is_finite(), "{}", spec.name);
            assert_eq!(a.daily_rewards.len(), 4, "lanes × episodes trajectories");
            assert_eq!(
                a.avg_daily_reward.to_bits(),
                b.avg_daily_reward.to_bits(),
                "{}",
                spec.name
            );
        }
        assert!(evaluate_generalist(
            &policy,
            &ScenarioSpec::baseline(),
            toy_factory(slots, aug),
            0,
            2,
            1
        )
        .is_err());
        assert!(evaluate_generalist(
            &policy,
            &ScenarioSpec::baseline(),
            toy_factory(slots, aug),
            2,
            0,
            1
        )
        .is_err());
    }

    #[test]
    fn generalist_rejects_bad_configs_and_lane_mismatches() {
        let slots = 24;
        let mixture = library_mixture(slots);
        let mut config = GeneralistConfig::quick(2, 0);
        assert!(
            train_generalist(&config, &mixture, toy_factory(slots, ObsAugmentation::NONE)).is_err()
        );
        config.lanes = 3;
        config.trainer.episodes = 0;
        assert!(
            train_generalist(&config, &mixture, toy_factory(slots, ObsAugmentation::NONE)).is_err()
        );
        // Factory building the wrong number of lanes is rejected.
        let config = GeneralistConfig::quick(2, 3);
        let wrong = |_e: usize, _specs: &[&ScenarioSpec], _r: &mut [EctRng]| {
            FleetEnv::from_envs(vec![toy_env(
                slots,
                &ScenarioSpec::baseline(),
                &ObsAugmentation::NONE,
            )])
        };
        assert!(train_generalist(&config, &mixture, wrong).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite contract: assignments are deterministic under a fixed
        /// seed, and every positive-weight spec is eventually sampled.
        #[test]
        fn mixture_assignment_is_deterministic_and_covers_support(
            seed in 0u64..1_000,
            lanes in 1usize..6,
            zero_idx in 0usize..4,
        ) {
            let horizon = 48;
            let mut entries: Vec<(ScenarioSpec, f64)> = scenario_library(horizon)
                .into_iter()
                .take(4)
                .enumerate()
                .map(|(i, spec)| (spec, 1.0 + i as f64))
                .collect();
            entries[zero_idx].1 = 0.0;
            // Keep at least one positive weight.
            if entries.iter().all(|(_, w)| *w == 0.0) {
                entries[0].1 = 1.0;
            }
            let mixture = ScenarioMixture::new(entries.clone()).unwrap();

            let mut seen = vec![false; mixture.len()];
            for episode in 0..128 {
                let a = mixture.assignment(seed, episode, lanes);
                let b = mixture.assignment(seed, episode, lanes);
                prop_assert_eq!(&a, &b, "episode {} not deterministic", episode);
                for &idx in &a {
                    prop_assert!(idx < mixture.len());
                    prop_assert!(entries[idx].1 > 0.0, "zero-weight spec sampled");
                    seen[idx] = true;
                }
            }
            for (idx, (_, weight)) in entries.iter().enumerate() {
                if *weight > 0.0 {
                    prop_assert!(seen[idx], "spec {} never sampled in 128 episodes", idx);
                }
            }
        }
    }
}
