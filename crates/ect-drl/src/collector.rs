//! Batched rollout collection and fleet training over [`FleetEnv`].
//!
//! The sequential [`crate::trainer::train`] loop steps one [`HubEnv`](ect_env::env::HubEnv)
//! (`ect_env::env::HubEnv`) at a time. This module rides the batched fleet
//! engine instead: all lanes advance in lockstep through
//! [`FleetEnv::step_batch`], transitions land in **per-lane**
//! [`RolloutBuffer`]s, and every lane keeps its own policy, PPO learner and
//! RNG stream.
//!
//! Determinism contract (pinned by `tests/batched_equivalence.rs`): lane `i`
//! of [`train_fleet`] consumes its RNG in exactly the order the sequential
//! trainer would for hub `i` under the same seed, and the slot kernel is
//! shared with `HubEnv` — so episode returns, rollout buffers and trained
//! weights are bit-identical between the two paths.
//!
//! When all lanes share one policy, [`collect_shared_policy_episode`]
//! amortises the network forward pass over the whole batch: one
//! `(lanes × state_dim)` matrix through the actor-critic per slot instead of
//! `lanes` single-row passes.
//!
//! [`train_fleet_overlapped`] additionally offers an
//! [`UpdateOverlap::DoubleBuffered`] schedule that runs the PPO updates of
//! window `k` on a background thread while the lanes collect window `k+1`
//! into a second buffer set — deterministic, but one policy window staler
//! than the default [`UpdateOverlap::Lockstep`] path.

use crate::actor_critic::ActorCritic;
use crate::ppo::Ppo;
use crate::rollout::{RolloutBuffer, Transition};
use crate::trainer::{EvalSummary, TrainerConfig, TrainingHistory};
use ect_env::battery::BpAction;
use ect_env::vec_env::FleetEnv;
use ect_nn::matrix::Matrix;
use ect_types::rng::EctRng;
use ect_types::time::SLOTS_PER_DAY;

/// Anything that can produce a fresh lockstep fleet episode.
///
/// Implemented for closures
/// `FnMut(usize, &mut [EctRng]) -> Result<FleetEnv>`; the `usize` is the
/// episode index and `rngs[i]` is lane `i`'s stream (used e.g. to redraw
/// charging strata per episode).
pub trait FleetFactory {
    /// Builds the fleet environment for the given episode index.
    ///
    /// # Errors
    ///
    /// Propagates environment construction failures.
    fn make(&mut self, episode: usize, rngs: &mut [EctRng]) -> ect_types::Result<FleetEnv>;
}

impl<F> FleetFactory for F
where
    F: FnMut(usize, &mut [EctRng]) -> ect_types::Result<FleetEnv>,
{
    fn make(&mut self, episode: usize, rngs: &mut [EctRng]) -> ect_types::Result<FleetEnv> {
        self(episode, rngs)
    }
}

/// Collects one lockstep episode with **per-lane policies**, appending each
/// lane's transitions to its own buffer; returns per-lane episode returns.
///
/// Lane `i` draws actions from `policies[i]` using `rngs[i]`, so the
/// transition stream of each lane is independent of every other lane —
/// the property that makes batched training bit-identical to sequential.
///
/// # Panics
///
/// Panics if `policies`, `rngs`, `buffers` or `initial_soc` lengths differ
/// from the fleet's lane count.
pub fn collect_fleet_episode(
    fleet: &mut FleetEnv,
    policies: &[ActorCritic],
    rngs: &mut [EctRng],
    buffers: &mut [RolloutBuffer],
    initial_soc: &[f64],
) -> Vec<f64> {
    let n = fleet.num_lanes();
    assert_eq!(policies.len(), n, "one policy per lane");
    assert_eq!(rngs.len(), n, "one rng per lane");
    assert_eq!(buffers.len(), n, "one buffer per lane");
    fleet.reset(initial_soc);

    let mut returns = vec![0.0; n];
    let mut actions = vec![BpAction::Idle; n];
    let mut probs = vec![0.0; n];
    let mut values = vec![0.0; n];
    let mut states: Vec<Vec<f64>> = (0..n).map(|lane| fleet.lane_obs(lane).to_vec()).collect();
    loop {
        for lane in 0..n {
            let (action, prob, value) =
                policies[lane].sample_action(&states[lane], &mut rngs[lane]);
            actions[lane] = action;
            probs[lane] = prob;
            values[lane] = value;
        }
        let step = fleet.step_batch(&actions);
        for lane in 0..n {
            returns[lane] += step.rewards[lane];
            buffers[lane].push(Transition {
                state: std::mem::take(&mut states[lane]),
                action: actions[lane].index(),
                action_prob: probs[lane],
                reward: step.rewards[lane],
                value: values[lane],
                done: step.done,
            });
        }
        let done = step.done;
        for (lane, state) in states.iter_mut().enumerate() {
            let obs = fleet.lane_obs(lane);
            state.resize(obs.len(), 0.0);
            state.copy_from_slice(obs);
        }
        if done {
            break;
        }
    }
    returns
}

/// Collects one lockstep episode with a **shared policy**, amortising the
/// forward pass: one `(lanes × state_dim)` batch through the network per
/// slot. Per-lane sampling still uses `rngs[i]`, so lanes stay independent
/// streams.
///
/// # Panics
///
/// Panics if `rngs`, `buffers` or `initial_soc` lengths differ from the
/// fleet's lane count.
pub fn collect_shared_policy_episode(
    fleet: &mut FleetEnv,
    policy: &ActorCritic,
    rngs: &mut [EctRng],
    buffers: &mut [RolloutBuffer],
    initial_soc: &[f64],
) -> Vec<f64> {
    let n = fleet.num_lanes();
    assert_eq!(rngs.len(), n, "one rng per lane");
    assert_eq!(buffers.len(), n, "one buffer per lane");
    let dim = fleet.state_dim();
    fleet.reset(initial_soc);

    let mut returns = vec![0.0; n];
    let mut actions = vec![BpAction::Idle; n];
    let mut states = Matrix::from_vec(n, dim, fleet.obs().to_vec());
    loop {
        // One batched forward pass for every lane.
        let (prob_rows, value_col) = policy.infer(&states);
        for lane in 0..n {
            let row = [
                prob_rows[(lane, 0)],
                prob_rows[(lane, 1)],
                prob_rows[(lane, 2)],
            ];
            let idx = rngs[lane].categorical(&row);
            actions[lane] = BpAction::from_index(idx);
        }
        let step = fleet.step_batch(&actions);
        for lane in 0..n {
            returns[lane] += step.rewards[lane];
            buffers[lane].push(Transition {
                state: states.row(lane).to_vec(),
                action: actions[lane].index(),
                action_prob: prob_rows[(lane, actions[lane].index())],
                reward: step.rewards[lane],
                value: value_col[(lane, 0)],
                done: step.done,
            });
        }
        let done = step.done;
        states.as_mut_slice().copy_from_slice(fleet.obs());
        if done {
            break;
        }
    }
    returns
}

/// How rollout collection and PPO updates interleave across update windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateOverlap {
    /// Collect a window, then update, strictly alternating — the legacy
    /// path, bit-identical per lane to [`crate::trainer::train`].
    #[default]
    Lockstep,
    /// Double-buffered: a background thread runs window `k`'s PPO updates
    /// while the lanes collect window `k+1` into a second buffer set, using
    /// the policy snapshot from update `k-1` (one window of staleness).
    /// Updates draw from forked per-lane RNG streams so the run is fully
    /// deterministic — but deliberately *not* bit-identical to
    /// [`UpdateOverlap::Lockstep`], which consumes the lane streams in a
    /// different order and trains on fresher policies.
    DoubleBuffered,
}

/// RNG sub-stream id for the double-buffered optimiser's minibatch
/// shuffles, keeping the lane streams collection-only.
const UPDATE_RNG_STREAM: u64 = 0x0DB1_E5ED;

/// The optimiser's exclusive state, shipped to the update thread and back.
struct OptimiserState {
    policies: Vec<ActorCritic>,
    learners: Vec<Ppo>,
    rngs: Vec<EctRng>,
}

type UpdateOutcome = ect_types::Result<(OptimiserState, Vec<crate::ppo::UpdateStats>)>;

/// Trains one PPO policy **per lane** over lockstep fleet episodes.
///
/// Mirrors [`crate::trainer::train`] applied independently to every lane:
/// `configs[i]` seeds lane `i`'s RNG, policy initialisation, strata redraws,
/// SoC randomisation, action sampling and PPO minibatch shuffling — in the
/// same order the sequential trainer consumes them. All configs must agree
/// on `episodes` and `episodes_per_update` (lanes advance in lockstep).
///
/// Equivalent to [`train_fleet_overlapped`] with
/// [`UpdateOverlap::Lockstep`].
///
/// # Errors
///
/// Propagates factory, environment and PPO errors, and rejects inconsistent
/// lane budgets or an empty fleet.
pub fn train_fleet<F: FleetFactory>(
    configs: &[TrainerConfig],
    factory: F,
) -> ect_types::Result<Vec<(ActorCritic, TrainingHistory)>> {
    train_fleet_overlapped(configs, factory, UpdateOverlap::Lockstep)
}

/// [`train_fleet`] with an explicit collection/update [`UpdateOverlap`]
/// schedule.
///
/// # Errors
///
/// Propagates factory, environment and PPO errors, and rejects inconsistent
/// lane budgets or an empty fleet.
pub fn train_fleet_overlapped<F: FleetFactory>(
    configs: &[TrainerConfig],
    mut factory: F,
    overlap: UpdateOverlap,
) -> ect_types::Result<Vec<(ActorCritic, TrainingHistory)>> {
    let Some(first) = configs.first() else {
        return Err(ect_types::EctError::InvalidConfig(
            "train_fleet needs at least one lane config".into(),
        ));
    };
    for config in configs {
        config.ppo.validate()?;
        if config.episodes != first.episodes
            || config.episodes_per_update != first.episodes_per_update
        {
            return Err(ect_types::EctError::InvalidConfig(
                "train_fleet lanes must share episodes and episodes_per_update".into(),
            ));
        }
    }
    let n = configs.len();
    let mut rngs: Vec<EctRng> = configs.iter().map(|c| EctRng::seed_from(c.seed)).collect();

    // Probe the state dimension exactly like the sequential trainer: from a
    // throwaway episode built on forked streams (the forks leave the lane
    // streams untouched).
    let mut probe_rngs: Vec<EctRng> = rngs.iter().map(|r| r.fork(0)).collect();
    let probe = factory.make(0, &mut probe_rngs)?;
    let state_dim = probe.state_dim();
    if probe.num_lanes() != n {
        return Err(ect_types::EctError::ShapeMismatch {
            context: "train_fleet lanes",
            expected: n,
            actual: probe.num_lanes(),
        });
    }
    drop(probe);

    let mut policies: Vec<ActorCritic> = configs
        .iter()
        .zip(rngs.iter_mut())
        .map(|(config, rng)| ActorCritic::new(state_dim, &config.net, rng))
        .collect();
    let mut learners: Vec<Ppo> = configs
        .iter()
        .map(|config| Ppo::new(config.ppo.clone()))
        .collect::<ect_types::Result<_>>()?;
    let mut histories = vec![TrainingHistory::default(); n];
    let mut buffers = vec![RolloutBuffer::new(); n];
    let mut initial_soc = vec![0.0; n];

    let episodes = first.episodes;
    let per_update = first.episodes_per_update.max(1);

    match overlap {
        UpdateOverlap::Lockstep => {
            // One `ppo.collect` span per episode window, closed around each
            // inline `ppo.update` — the per-window collect/update split.
            let mut collect_span = Some(ect_obs::span("ppo.collect"));
            for episode in 0..episodes {
                let mut fleet = factory.make(episode, &mut rngs)?;
                if fleet.num_lanes() != n {
                    return Err(ect_types::EctError::ShapeMismatch {
                        context: "train_fleet lanes",
                        expected: n,
                        actual: fleet.num_lanes(),
                    });
                }
                for (soc, rng) in initial_soc.iter_mut().zip(rngs.iter_mut()) {
                    *soc = rng.uniform(); // the paper randomises episode SoC
                }
                let returns = collect_fleet_episode(
                    &mut fleet,
                    &policies,
                    &mut rngs,
                    &mut buffers,
                    &initial_soc,
                );
                for (history, ret) in histories.iter_mut().zip(&returns) {
                    history.episode_returns.push(*ret);
                }

                if (episode + 1) % per_update == 0 {
                    collect_span.take();
                    let update_span = ect_obs::span("ppo.update");
                    for lane in 0..n {
                        let stats = learners[lane].update(
                            &mut policies[lane],
                            &buffers[lane],
                            &mut rngs[lane],
                        )?;
                        histories[lane].update_stats.push(stats);
                        buffers[lane].clear();
                    }
                    drop(update_span);
                    if episode + 1 < episodes {
                        collect_span = Some(ect_obs::span("ppo.collect"));
                    }
                }
            }
            drop(collect_span);
            if buffers.iter().any(|buffer| !buffer.is_empty()) {
                let _update_span = ect_obs::span("ppo.update");
                for lane in 0..n {
                    if !buffers[lane].is_empty() {
                        let stats = learners[lane].update(
                            &mut policies[lane],
                            &buffers[lane],
                            &mut rngs[lane],
                        )?;
                        histories[lane].update_stats.push(stats);
                    }
                }
            }
            Ok(policies.into_iter().zip(histories).collect())
        }
        UpdateOverlap::DoubleBuffered => {
            // The optimiser owns the canonical policies/learners and a forked
            // RNG per lane; collection keeps the lane streams to itself and
            // works off a policy snapshot, so the two can run concurrently.
            let update_rngs: Vec<EctRng> = rngs.iter().map(|r| r.fork(UPDATE_RNG_STREAM)).collect();
            let mut collect_policies = policies.clone();
            let mut opt = Some(OptimiserState {
                policies,
                learners,
                rngs: update_rngs,
            });
            let mut pending: Option<std::thread::JoinHandle<UpdateOutcome>> = None;
            // Stall accounting: time the collection side spends blocked on
            // `join()` is overlap that did NOT happen (counter
            // `ppo.overlap_stall_us`); the update itself is spanned inside
            // the background thread.
            let join_pending = |handle: std::thread::JoinHandle<UpdateOutcome>| -> UpdateOutcome {
                let t0 = ect_obs::enabled().then(std::time::Instant::now);
                let outcome = handle.join().expect("PPO update thread panicked");
                if let Some(t0) = t0 {
                    ect_obs::counter_add("ppo.overlap_stall_us", t0.elapsed().as_micros() as u64);
                }
                outcome
            };

            let mut collect_span = Some(ect_obs::span("ppo.collect"));
            for episode in 0..episodes {
                let mut fleet = factory.make(episode, &mut rngs)?;
                if fleet.num_lanes() != n {
                    return Err(ect_types::EctError::ShapeMismatch {
                        context: "train_fleet lanes",
                        expected: n,
                        actual: fleet.num_lanes(),
                    });
                }
                for (soc, rng) in initial_soc.iter_mut().zip(rngs.iter_mut()) {
                    *soc = rng.uniform();
                }
                let returns = collect_fleet_episode(
                    &mut fleet,
                    &collect_policies,
                    &mut rngs,
                    &mut buffers,
                    &initial_soc,
                );
                for (history, ret) in histories.iter_mut().zip(&returns) {
                    history.episode_returns.push(*ret);
                }

                if (episode + 1) % per_update == 0 {
                    collect_span.take();
                    // Join the in-flight update of window k-1 (if any),
                    // refresh the collection snapshot to its output …
                    if let Some(handle) = pending.take() {
                        let (state, stats) = join_pending(handle)?;
                        for (history, s) in histories.iter_mut().zip(stats) {
                            history.update_stats.push(s);
                        }
                        collect_policies.clone_from(&state.policies);
                        opt = Some(state);
                    }
                    // … then hand window k's filled buffers to a fresh
                    // update thread and keep collecting into empty ones.
                    let mut state = opt.take().expect("optimiser state is accounted for");
                    let filled = std::mem::replace(&mut buffers, vec![RolloutBuffer::new(); n]);
                    pending = Some(std::thread::spawn(move || {
                        let _update_span = ect_obs::span("ppo.update");
                        let mut stats = Vec::with_capacity(filled.len());
                        for (lane, buffer) in filled.iter().enumerate() {
                            stats.push(state.learners[lane].update(
                                &mut state.policies[lane],
                                buffer,
                                &mut state.rngs[lane],
                            )?);
                        }
                        Ok((state, stats))
                    }));
                    if episode + 1 < episodes {
                        collect_span = Some(ect_obs::span("ppo.collect"));
                    }
                }
            }
            drop(collect_span);

            // Drain: join the last in-flight window, then flush any partial
            // tail window inline.
            if let Some(handle) = pending.take() {
                let (state, stats) = join_pending(handle)?;
                for (history, s) in histories.iter_mut().zip(stats) {
                    history.update_stats.push(s);
                }
                opt = Some(state);
            }
            let mut state = opt.take().expect("optimiser state is accounted for");
            if buffers.iter().any(|buffer| !buffer.is_empty()) {
                let _update_span = ect_obs::span("ppo.update");
                for lane in 0..n {
                    if !buffers[lane].is_empty() {
                        let stats = state.learners[lane].update(
                            &mut state.policies[lane],
                            &buffers[lane],
                            &mut state.rngs[lane],
                        )?;
                        histories[lane].update_stats.push(stats);
                    }
                }
            }
            Ok(state.policies.into_iter().zip(histories).collect())
        }
    }
}

/// Evaluates per-lane policies greedily over lockstep test episodes,
/// mirroring [`crate::trainer::evaluate`] with a
/// [`crate::heuristics::DrlScheduler`] on every lane.
///
/// `seeds[i]` seeds lane `i`'s evaluation stream (strata redraw + SoC).
///
/// # Errors
///
/// Propagates factory failures; rejects mismatched `policies`/`seeds`.
pub fn evaluate_fleet_greedy<F: FleetFactory>(
    policies: &[ActorCritic],
    mut factory: F,
    episodes: usize,
    seeds: &[u64],
) -> ect_types::Result<Vec<EvalSummary>> {
    if policies.len() != seeds.len() {
        return Err(ect_types::EctError::ShapeMismatch {
            context: "evaluate_fleet seeds",
            expected: policies.len(),
            actual: seeds.len(),
        });
    }
    let n = policies.len();
    let mut rngs: Vec<EctRng> = seeds.iter().map(|&s| EctRng::seed_from(s)).collect();
    let mut summaries = vec![EvalSummary::default(); n];
    let mut totals = vec![0.0; n];
    let mut total_days = vec![0usize; n];
    let mut initial_soc = vec![0.0; n];
    let mut actions = vec![BpAction::Idle; n];

    for episode in 0..episodes {
        let mut fleet = factory.make(episode, &mut rngs)?;
        if fleet.num_lanes() != n {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "evaluate_fleet lanes",
                expected: n,
                actual: fleet.num_lanes(),
            });
        }
        for (soc, rng) in initial_soc.iter_mut().zip(rngs.iter_mut()) {
            *soc = rng.uniform();
        }
        fleet.reset(&initial_soc);
        let mut slot_rewards: Vec<Vec<f64>> = vec![Vec::with_capacity(fleet.horizon()); n];
        loop {
            for (lane, action) in actions.iter_mut().enumerate() {
                *action = policies[lane].greedy_action(fleet.lane_obs(lane));
            }
            let step = fleet.step_batch(&actions);
            for (lane_rewards, &reward) in slot_rewards.iter_mut().zip(step.rewards) {
                lane_rewards.push(reward);
            }
            if step.done {
                break;
            }
        }
        for lane in 0..n {
            let total: f64 = slot_rewards[lane].iter().sum();
            totals[lane] += total;
            let daily: Vec<f64> = slot_rewards[lane]
                .chunks(SLOTS_PER_DAY)
                .map(|chunk| chunk.iter().sum())
                .collect();
            total_days[lane] += daily.len();
            summaries[lane].daily_rewards.push(daily);
        }
    }
    for lane in 0..n {
        summaries[lane].avg_episode_profit = totals[lane] / episodes.max(1) as f64;
        summaries[lane].avg_daily_reward = totals[lane] / total_days[lane].max(1) as f64;
    }
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::DrlScheduler;
    use crate::trainer::{evaluate, train, TrainerConfig};
    use ect_data::charging::Stratum;
    use ect_env::env::{EpisodeInputs, HubEnv};
    use ect_env::hub::HubConfig;
    use ect_env::tariff::DiscountSchedule;
    use ect_env::vec_env::FleetEnv;
    use ect_types::units::{DollarsPerKwh, LoadRate};

    /// The trainer-test toy world, parameterised per lane so lanes differ.
    fn lane_env(slots: usize, lane: usize) -> HubEnv {
        let rtp: Vec<DollarsPerKwh> = (0..slots)
            .map(|t| {
                let base = if (t / 12) % 2 == 0 { 0.04 } else { 0.13 };
                DollarsPerKwh::new(base + lane as f64 * 0.005)
            })
            .collect();
        let inputs = EpisodeInputs {
            rtp,
            weather: vec![
                ect_data::weather::WeatherSample {
                    solar_irradiance: 0.0,
                    wind_speed: 0.0,
                    cloud_cover: 0.0,
                };
                slots
            ],
            traffic: vec![
                ect_data::traffic::TrafficSample {
                    load_rate: LoadRate::new(0.4).unwrap(),
                    volume_gb: 30.0,
                };
                slots
            ],
            discounts: DiscountSchedule::none(slots),
            strata: vec![Stratum::AlwaysCharge; slots],
        };
        HubEnv::new(HubConfig::bare(), inputs, 6).unwrap()
    }

    fn fleet_factory(
        slots: usize,
        lanes: usize,
    ) -> impl FnMut(usize, &mut [EctRng]) -> ect_types::Result<FleetEnv> {
        move |_episode, _rngs| {
            FleetEnv::from_envs((0..lanes).map(|lane| lane_env(slots, lane)).collect())
        }
    }

    fn lane_configs(lanes: usize, episodes: usize) -> Vec<TrainerConfig> {
        (0..lanes)
            .map(|lane| TrainerConfig {
                episodes,
                seed: 0xD21 ^ ((lane as u64) << 32),
                ..TrainerConfig::quick(episodes)
            })
            .collect()
    }

    #[test]
    fn batched_training_is_bit_identical_to_sequential() {
        let lanes = 3;
        let episodes = 4;
        let configs = lane_configs(lanes, episodes);

        let batched = train_fleet(&configs, fleet_factory(48, lanes)).unwrap();

        for (lane, config) in configs.iter().enumerate() {
            let (seq_policy, seq_history) = train(config, move |_e: usize, _r: &mut EctRng| {
                Ok(lane_env(48, lane))
            })
            .unwrap();
            let (bat_policy, bat_history) = &batched[lane];
            assert_eq!(
                seq_history.episode_returns, bat_history.episode_returns,
                "lane {lane} returns"
            );
            // Same weights ⇒ same behaviour on a probe state.
            let probe: Vec<f64> = (0..seq_policy.state_dim())
                .map(|i| (i as f64) / 31.0 - 0.5)
                .collect();
            let (sp, sv) = seq_policy.evaluate_one(&probe);
            let (bp, bv) = bat_policy.evaluate_one(&probe);
            assert_eq!(sv.to_bits(), bv.to_bits(), "lane {lane} value");
            for (a, b) in sp.iter().zip(&bp) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} probs");
            }
        }
    }

    #[test]
    fn batched_evaluation_matches_sequential() {
        let lanes = 2;
        let configs = lane_configs(lanes, 2);
        let trained = train_fleet(&configs, fleet_factory(48, lanes)).unwrap();
        let policies: Vec<ActorCritic> = trained.iter().map(|(p, _)| p.clone()).collect();
        let seeds: Vec<u64> = configs.iter().map(|c| c.seed ^ 0xE7A1).collect();

        let batched =
            evaluate_fleet_greedy(&policies, fleet_factory(48, lanes), 3, &seeds).unwrap();

        for lane in 0..lanes {
            let mut sched = DrlScheduler::new(policies[lane].clone());
            let seq = evaluate(
                &mut sched,
                move |_e: usize, _r: &mut EctRng| Ok(lane_env(48, lane)),
                3,
                seeds[lane],
            )
            .unwrap();
            assert_eq!(
                seq.daily_rewards, batched[lane].daily_rewards,
                "lane {lane}"
            );
            assert_eq!(
                seq.avg_daily_reward.to_bits(),
                batched[lane].avg_daily_reward.to_bits()
            );
        }
    }

    #[test]
    fn shared_policy_collection_matches_per_lane_path() {
        // One policy replicated across lanes: the batched forward pass must
        // reproduce the per-lane sample_action stream bit-for-bit.
        let lanes = 4;
        let mut rng = EctRng::seed_from(77);
        let policy = ActorCritic::new(
            lane_env(24, 0).state_dim(),
            &crate::actor_critic::ActorCriticConfig::default(),
            &mut rng,
        );
        let make_fleet =
            || FleetEnv::from_envs((0..lanes).map(|lane| lane_env(24, lane)).collect()).unwrap();
        let socs = vec![0.5; lanes];

        let mut fleet_a = make_fleet();
        let mut rngs_a: Vec<EctRng> = (0..lanes as u64).map(EctRng::seed_from).collect();
        let mut bufs_a = vec![RolloutBuffer::new(); lanes];
        let policies = vec![policy.clone(); lanes];
        let ret_a = collect_fleet_episode(&mut fleet_a, &policies, &mut rngs_a, &mut bufs_a, &socs);

        let mut fleet_b = make_fleet();
        let mut rngs_b: Vec<EctRng> = (0..lanes as u64).map(EctRng::seed_from).collect();
        let mut bufs_b = vec![RolloutBuffer::new(); lanes];
        let ret_b =
            collect_shared_policy_episode(&mut fleet_b, &policy, &mut rngs_b, &mut bufs_b, &socs);

        assert_eq!(ret_a, ret_b);
        for lane in 0..lanes {
            assert_eq!(bufs_a[lane].transitions(), bufs_b[lane].transitions());
        }
    }

    fn probe_weights(policy: &ActorCritic) -> ([f64; 3], f64) {
        let probe: Vec<f64> = (0..policy.state_dim())
            .map(|i| (i as f64) / 31.0 - 0.5)
            .collect();
        policy.evaluate_one(&probe)
    }

    #[test]
    fn lockstep_overlap_is_the_default_path() {
        let lanes = 2;
        let configs = lane_configs(lanes, 4);
        let default = train_fleet(&configs, fleet_factory(48, lanes)).unwrap();
        let lockstep =
            train_fleet_overlapped(&configs, fleet_factory(48, lanes), UpdateOverlap::Lockstep)
                .unwrap();
        for lane in 0..lanes {
            assert_eq!(
                default[lane].1.episode_returns,
                lockstep[lane].1.episode_returns
            );
            let (dp, dv) = probe_weights(&default[lane].0);
            let (lp, lv) = probe_weights(&lockstep[lane].0);
            assert_eq!(dv.to_bits(), lv.to_bits());
            for (a, b) in dp.iter().zip(&lp) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn double_buffered_training_is_deterministic() {
        // The update thread races the collection loop, but every data
        // dependency joins at a fixed point — two runs must agree bitwise.
        let lanes = 3;
        let configs = lane_configs(lanes, 5);
        let run = || {
            train_fleet_overlapped(
                &configs,
                fleet_factory(48, lanes),
                UpdateOverlap::DoubleBuffered,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        for lane in 0..lanes {
            assert_eq!(
                a[lane].1.episode_returns, b[lane].1.episode_returns,
                "lane {lane} returns"
            );
            assert_eq!(a[lane].1.update_stats.len(), b[lane].1.update_stats.len());
            let (pa, va) = probe_weights(&a[lane].0);
            let (pb, vb) = probe_weights(&b[lane].0);
            assert_eq!(va.to_bits(), vb.to_bits(), "lane {lane} value");
            for (x, y) in pa.iter().zip(&pb) {
                assert_eq!(x.to_bits(), y.to_bits(), "lane {lane} probs");
            }
        }
    }

    #[test]
    fn double_buffered_first_window_matches_lockstep() {
        // Until the first update lands, both schedules collect with the
        // initial policy off identical lane streams, so the first update
        // window's returns are bit-identical; update counts agree too.
        let lanes = 2;
        let episodes = 5;
        let configs = lane_configs(lanes, episodes);
        let per_update = configs[0].episodes_per_update.max(1);
        let lockstep =
            train_fleet_overlapped(&configs, fleet_factory(48, lanes), UpdateOverlap::Lockstep)
                .unwrap();
        let buffered = train_fleet_overlapped(
            &configs,
            fleet_factory(48, lanes),
            UpdateOverlap::DoubleBuffered,
        )
        .unwrap();
        for lane in 0..lanes {
            let window = per_update.min(episodes);
            assert_eq!(
                lockstep[lane].1.episode_returns[..window],
                buffered[lane].1.episode_returns[..window],
                "lane {lane} first window"
            );
            assert_eq!(
                lockstep[lane].1.update_stats.len(),
                buffered[lane].1.update_stats.len(),
                "lane {lane} update count"
            );
            assert_eq!(
                lockstep[lane].1.episode_returns.len(),
                buffered[lane].1.episode_returns.len()
            );
        }
    }

    #[test]
    fn train_fleet_validates_lane_budgets() {
        let mut configs = lane_configs(2, 3);
        configs[1].episodes = 5;
        assert!(train_fleet(&configs, fleet_factory(24, 2)).is_err());
        assert!(train_fleet(&[], fleet_factory(24, 0)).is_err());
        // Lane-count mismatch between configs and factory.
        let configs = lane_configs(3, 2);
        assert!(train_fleet(&configs, fleet_factory(24, 2)).is_err());
    }

    #[test]
    fn evaluate_fleet_validates_seeds() {
        let mut rng = EctRng::seed_from(1);
        let policy = ActorCritic::new(
            lane_env(24, 0).state_dim(),
            &crate::actor_critic::ActorCriticConfig::default(),
            &mut rng,
        );
        assert!(evaluate_fleet_greedy(&[policy], fleet_factory(24, 1), 1, &[1, 2]).is_err());
    }
}
