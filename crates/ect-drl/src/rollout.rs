//! Trajectory storage and advantage estimation.

use serde::{Deserialize, Serialize};

/// One collected transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Observation before acting.
    pub state: Vec<f64>,
    /// Index of the action taken.
    pub action: usize,
    /// Probability the behaviour policy assigned to that action
    /// (`π_old(a|s)` of Eq. 26).
    pub action_prob: f64,
    /// Reward received.
    pub reward: f64,
    /// Critic value estimate at the state.
    pub value: f64,
    /// Whether the episode ended after this transition.
    pub done: bool,
}

/// A buffer of transitions from one or more episodes.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transition.
    pub fn push(&mut self, t: Transition) {
        self.transitions.push(t);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// Stored transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Generalised advantage estimation (GAE-λ).
    ///
    /// Returns `(advantages, returns)` where `returns[i] = advantages[i] +
    /// values[i]` is the critic regression target. Episode boundaries
    /// (`done`) reset the recursion, so multi-episode buffers are safe.
    ///
    /// # Panics
    ///
    /// Panics on an empty buffer or parameters outside `[0, 1]`.
    pub fn gae(&self, gamma: f64, lambda: f64) -> (Vec<f64>, Vec<f64>) {
        assert!(!self.is_empty(), "gae on empty buffer");
        assert!((0.0..=1.0).contains(&gamma), "gamma {gamma} outside [0, 1]");
        assert!(
            (0.0..=1.0).contains(&lambda),
            "lambda {lambda} outside [0, 1]"
        );
        let n = self.transitions.len();
        let mut advantages = vec![0.0; n];
        let mut gae = 0.0;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            let (next_value, next_mask) = if t.done {
                (0.0, 0.0)
            } else if i + 1 < n {
                (self.transitions[i + 1].value, 1.0)
            } else {
                // Buffer truncated mid-episode: bootstrap with own value
                // (equivalent to assuming the critic is right).
                (t.value, 1.0)
            };
            let delta = t.reward + gamma * next_value * next_mask - t.value;
            gae = delta + gamma * lambda * next_mask * gae;
            advantages[i] = gae;
        }
        let returns: Vec<f64> = advantages
            .iter()
            .zip(&self.transitions)
            .map(|(a, t)| a + t.value)
            .collect();
        (advantages, returns)
    }

    /// Mean-zero, unit-variance normalisation of advantages (a standard PPO
    /// stabilisation; degenerate inputs are left centred only).
    pub fn normalise(advantages: &mut [f64]) {
        if advantages.is_empty() {
            return;
        }
        let n = advantages.len() as f64;
        let mean = advantages.iter().sum::<f64>() / n;
        let var = advantages.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        for a in advantages.iter_mut() {
            *a -= mean;
            if std > 1e-8 {
                *a /= std;
            }
        }
    }

    /// Sum of rewards currently stored.
    pub fn total_reward(&self) -> f64 {
        self.transitions.iter().map(|t| t.reward).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn transition(reward: f64, value: f64, done: bool) -> Transition {
        Transition {
            state: vec![0.0],
            action: 0,
            action_prob: 1.0 / 3.0,
            reward,
            value,
            done,
        }
    }

    #[test]
    fn gae_with_lambda_one_is_discounted_return_minus_value() {
        // γ = 1, λ = 1, values = 0: advantage = sum of future rewards.
        let mut buf = RolloutBuffer::new();
        for (i, r) in [1.0, 2.0, 3.0].iter().enumerate() {
            buf.push(transition(*r, 0.0, i == 2));
        }
        let (adv, ret) = buf.gae(1.0, 1.0);
        assert_eq!(adv, vec![6.0, 5.0, 3.0]);
        assert_eq!(ret, adv); // values are zero
    }

    #[test]
    fn gae_resets_at_episode_boundaries() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.0, true)); // episode 1
        buf.push(transition(5.0, 0.0, true)); // episode 2
        let (adv, _) = buf.gae(0.99, 0.95);
        assert_eq!(adv, vec![1.0, 5.0]);
    }

    #[test]
    fn gae_discounts_future() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(0.0, 0.0, false));
        buf.push(transition(10.0, 0.0, true));
        let (adv, _) = buf.gae(0.5, 1.0);
        assert_eq!(adv[0], 5.0);
        assert_eq!(adv[1], 10.0);
    }

    #[test]
    fn perfect_critic_gives_zero_advantage() {
        // If values exactly equal discounted returns, deltas vanish.
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 3.0, false)); // return: 1 + 2 = 3... with γ=1
        buf.push(transition(2.0, 2.0, true));
        let (adv, ret) = buf.gae(1.0, 1.0);
        assert!(adv.iter().all(|a| a.abs() < 1e-12), "{adv:?}");
        assert_eq!(ret, vec![3.0, 2.0]);
    }

    #[test]
    fn normalisation_standardises() {
        let mut adv = vec![1.0, 2.0, 3.0, 4.0];
        RolloutBuffer::normalise(&mut adv);
        let mean: f64 = adv.iter().sum::<f64>() / 4.0;
        let var: f64 = adv.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
        // Degenerate: all equal stays finite.
        let mut flat = vec![2.0, 2.0];
        RolloutBuffer::normalise(&mut flat);
        assert!(flat.iter().all(|a| a.abs() < 1e-12));
    }

    #[test]
    fn bookkeeping_helpers() {
        let mut buf = RolloutBuffer::new();
        assert!(buf.is_empty());
        buf.push(transition(2.5, 0.0, false));
        buf.push(transition(-1.0, 0.0, true));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.total_reward(), 1.5);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn gae_rejects_empty() {
        let _ = RolloutBuffer::new().gae(0.99, 0.95);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn returns_equal_advantage_plus_value(
            rewards in proptest::collection::vec(-5.0f64..5.0, 1..50),
            gamma in 0.5f64..1.0,
            lambda in 0.5f64..1.0,
        ) {
            let mut buf = RolloutBuffer::new();
            let n = rewards.len();
            for (i, r) in rewards.iter().enumerate() {
                buf.push(transition(*r, r * 0.5, i == n - 1));
            }
            let (adv, ret) = buf.gae(gamma, lambda);
            for i in 0..n {
                prop_assert!((ret[i] - adv[i] - buf.transitions()[i].value).abs() < 1e-9);
            }
        }
    }
}
