//! ECT-DRL training and evaluation loops (Section V-C).
//!
//! The paper trains one PPO policy per ECT-Hub for 500 thirty-day episodes
//! with a random initial state of charge, then tests for 100 episodes and
//! reports the average daily reward.

use crate::actor_critic::{ActorCritic, ActorCriticConfig};
use crate::heuristics::{run_episode, Scheduler};
use crate::ppo::{Ppo, PpoConfig, UpdateStats};
use crate::rollout::{RolloutBuffer, Transition};
use ect_env::env::HubEnv;
use ect_types::rng::EctRng;
use ect_types::time::SLOTS_PER_DAY;
use serde::{Deserialize, Serialize};

/// Anything that can produce a fresh episode environment.
///
/// Implemented for closures `FnMut(usize, &mut EctRng) -> Result<HubEnv>`;
/// the `usize` is the episode index, letting factories rotate start offsets
/// or draws.
pub trait EpisodeFactory {
    /// Builds the environment for the given episode index.
    ///
    /// # Errors
    ///
    /// Propagates environment construction failures.
    fn make(&mut self, episode: usize, rng: &mut EctRng) -> ect_types::Result<HubEnv>;
}

impl<F> EpisodeFactory for F
where
    F: FnMut(usize, &mut EctRng) -> ect_types::Result<HubEnv>,
{
    fn make(&mut self, episode: usize, rng: &mut EctRng) -> ect_types::Result<HubEnv> {
        self(episode, rng)
    }
}

/// Trainer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Training episodes (the paper uses 500).
    pub episodes: usize,
    /// Episodes collected per PPO update (1 = update after every episode).
    pub episodes_per_update: usize,
    /// PPO hyper-parameters.
    pub ppo: PpoConfig,
    /// Network sizes.
    pub net: ActorCriticConfig,
    /// Seed for action sampling and SoC randomisation.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            episodes: 500,
            episodes_per_update: 1,
            ppo: PpoConfig::default(),
            net: ActorCriticConfig::default(),
            seed: 0xD21,
        }
    }
}

impl TrainerConfig {
    /// A reduced budget for tests and quick experiments.
    pub fn quick(episodes: usize) -> Self {
        Self {
            episodes,
            ..Self::default()
        }
    }
}

/// Per-episode training curve.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Total profit of each training episode.
    pub episode_returns: Vec<f64>,
    /// PPO diagnostics per update.
    pub update_stats: Vec<UpdateStats>,
}

impl TrainingHistory {
    /// Mean return of the last `n` episodes (learning-progress summary).
    ///
    /// # Panics
    ///
    /// Panics if no episodes were recorded.
    pub fn recent_mean(&self, n: usize) -> f64 {
        assert!(!self.episode_returns.is_empty(), "no episodes recorded");
        let k = n.min(self.episode_returns.len()).max(1);
        let tail = &self.episode_returns[self.episode_returns.len() - k..];
        tail.iter().sum::<f64>() / k as f64
    }
}

/// Evaluation summary over test episodes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Mean total profit per episode, $.
    pub avg_episode_profit: f64,
    /// Mean profit per day, $ — the paper's "average daily reward".
    pub avg_daily_reward: f64,
    /// Per-day profit of each episode (`[episode][day]`), for Fig. 13.
    pub daily_rewards: Vec<Vec<f64>>,
}

/// Trains a PPO policy on episodes from the factory.
///
/// # Errors
///
/// Propagates factory, environment and PPO errors.
pub fn train<F: EpisodeFactory>(
    config: &TrainerConfig,
    mut factory: F,
) -> ect_types::Result<(ActorCritic, TrainingHistory)> {
    config.ppo.validate()?;
    let mut rng = EctRng::seed_from(config.seed);
    // Probe the state dimension from episode 0.
    let probe = factory.make(0, &mut rng.fork(0))?;
    let state_dim = probe.state_dim();
    drop(probe);

    let mut policy = ActorCritic::new(state_dim, &config.net, &mut rng);
    let mut ppo = Ppo::new(config.ppo.clone())?;
    let mut history = TrainingHistory::default();
    let mut buffer = RolloutBuffer::new();

    for episode in 0..config.episodes {
        let mut env = factory.make(episode, &mut rng)?;
        let initial_soc = rng.uniform(); // the paper randomises episode SoC
        let mut state = env.reset(initial_soc);
        let mut episode_return = 0.0;
        loop {
            let (action, prob, value) = policy.sample_action(&state, &mut rng);
            let step = env.step(action);
            episode_return += step.reward;
            buffer.push(Transition {
                state: std::mem::take(&mut state),
                action: action.index(),
                action_prob: prob,
                reward: step.reward,
                value,
                done: step.done,
            });
            state = step.state;
            if step.done {
                break;
            }
        }
        history.episode_returns.push(episode_return);

        if (episode + 1) % config.episodes_per_update.max(1) == 0 {
            let stats = ppo.update(&mut policy, &buffer, &mut rng)?;
            history.update_stats.push(stats);
            buffer.clear();
        }
    }
    if !buffer.is_empty() {
        let stats = ppo.update(&mut policy, &buffer, &mut rng)?;
        history.update_stats.push(stats);
    }
    Ok((policy, history))
}

/// Evaluates any scheduler over test episodes from the factory.
///
/// # Errors
///
/// Propagates factory and environment errors.
pub fn evaluate<F: EpisodeFactory, S: Scheduler + ?Sized>(
    scheduler: &mut S,
    mut factory: F,
    episodes: usize,
    seed: u64,
) -> ect_types::Result<EvalSummary> {
    let mut rng = EctRng::seed_from(seed);
    let mut summary = EvalSummary::default();
    let mut total = 0.0;
    let mut total_days = 0usize;
    for episode in 0..episodes {
        let mut env = factory.make(episode, &mut rng)?;
        let initial_soc = rng.uniform();
        let (profit, trail) = run_episode(&mut env, scheduler, initial_soc);
        total += profit;
        // Group the trail into calendar days for the Fig. 13 series.
        let mut daily = Vec::new();
        for chunk in trail.chunks(SLOTS_PER_DAY) {
            daily.push(chunk.iter().map(|b| b.reward.as_f64()).sum());
        }
        total_days += daily.len();
        summary.daily_rewards.push(daily);
    }
    summary.avg_episode_profit = total / episodes.max(1) as f64;
    summary.avg_daily_reward = total / total_days.max(1) as f64;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::NoBattery;
    use ect_data::charging::Stratum;
    use ect_env::env::EpisodeInputs;
    use ect_env::hub::HubConfig;
    use ect_env::tariff::DiscountSchedule;
    use ect_types::units::{DollarsPerKwh, LoadRate};

    /// Deterministic toy world: price alternates cheap/expensive every 12 h.
    fn factory(slots: usize) -> impl FnMut(usize, &mut EctRng) -> ect_types::Result<HubEnv> {
        move |_episode, _rng| {
            let rtp: Vec<DollarsPerKwh> = (0..slots)
                .map(|t| DollarsPerKwh::new(if (t / 12) % 2 == 0 { 0.04 } else { 0.13 }))
                .collect();
            let inputs = EpisodeInputs {
                rtp,
                weather: vec![
                    ect_data::weather::WeatherSample {
                        solar_irradiance: 0.0,
                        wind_speed: 0.0,
                        cloud_cover: 0.0,
                    };
                    slots
                ],
                traffic: vec![
                    ect_data::traffic::TrafficSample {
                        load_rate: LoadRate::new(0.4).unwrap(),
                        volume_gb: 30.0,
                    };
                    slots
                ],
                discounts: DiscountSchedule::none(slots),
                strata: vec![Stratum::AlwaysCharge; slots],
            };
            HubEnv::new(HubConfig::bare(), inputs, 6)
        }
    }

    #[test]
    fn training_runs_and_records_history() {
        let config = TrainerConfig {
            episodes: 6,
            ..TrainerConfig::quick(6)
        };
        let (policy, history) = train(&config, factory(48)).unwrap();
        assert_eq!(history.episode_returns.len(), 6);
        assert_eq!(history.update_stats.len(), 6);
        assert!(history.recent_mean(3).is_finite());
        assert_eq!(policy.state_dim(), 6 * 5 + 1);
    }

    #[test]
    fn evaluation_summarises_days() {
        let summary = evaluate(&mut NoBattery, factory(48), 3, 1).unwrap();
        assert_eq!(summary.daily_rewards.len(), 3);
        assert_eq!(summary.daily_rewards[0].len(), 2); // 48 slots = 2 days
        assert!(summary.avg_daily_reward.is_finite());
        assert!((summary.avg_episode_profit - 2.0 * summary.avg_daily_reward).abs() < 1e-9);
    }

    #[test]
    fn trained_policy_beats_random_initialisation_on_toy_world() {
        // Short training on a strongly structured price signal should already
        // beat the untrained policy's stochastic behaviour.
        let config = TrainerConfig {
            episodes: 40,
            ppo: PpoConfig {
                entropy_coef: 0.02,
                ..PpoConfig::default()
            },
            ..TrainerConfig::quick(40)
        };
        let (policy, history) = train(&config, factory(48)).unwrap();
        let early: f64 = history.episode_returns[..5].iter().sum::<f64>() / 5.0;
        let late = history.recent_mean(5);
        // Learning signal: later episodes should not be worse by much, and
        // the greedy policy must be valid.
        assert!(late > early - 5.0, "early {early} late {late}");
        let mut sched = crate::heuristics::DrlScheduler::new(policy);
        let summary = evaluate(&mut sched, factory(48), 3, 2).unwrap();
        assert!(summary.avg_daily_reward.is_finite());
    }

    #[test]
    fn determinism_per_seed() {
        let config = TrainerConfig {
            episodes: 3,
            ..TrainerConfig::quick(3)
        };
        let (_, h1) = train(&config, factory(24)).unwrap();
        let (_, h2) = train(&config, factory(24)).unwrap();
        assert_eq!(h1.episode_returns, h2.episode_returns);
    }

    #[test]
    #[should_panic(expected = "no episodes recorded")]
    fn recent_mean_requires_history() {
        let _ = TrainingHistory::default().recent_mean(5);
    }
}
