//! The actor-critic network of ECT-DRL (Fig. 10 of the paper).
//!
//! All state inputs are concatenated and fed through a shared fully
//! connected trunk; the actor head emits a softmax distribution over the
//! three battery actions, the critic head a scalar state value.

use ect_env::battery::BpAction;
use ect_nn::layers::{softmax_backward, softmax_rows, ActivationKind};
use ect_nn::matrix::Matrix;
use ect_nn::mlp::Mlp;
use ect_nn::param::{Param, Parameterized};
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// Network sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorCriticConfig {
    /// Width of the shared trunk layer(s).
    pub trunk_hidden: Vec<usize>,
    /// Hidden widths of the actor head (before the 3-way output).
    pub actor_hidden: Vec<usize>,
    /// Hidden widths of the critic head (before the scalar output).
    pub critic_hidden: Vec<usize>,
    /// Initial logit bias of the *idle* action ("safe init"): with 2.0 the
    /// untrained policy idles ~75 % of the time instead of thrashing the
    /// battery randomly, so early training starts from the do-no-harm
    /// baseline. Set 0.0 for a uniform initial policy (ablation).
    pub idle_bias: f64,
}

impl Default for ActorCriticConfig {
    fn default() -> Self {
        Self {
            trunk_hidden: vec![64],
            actor_hidden: vec![32],
            critic_hidden: vec![32],
            idle_bias: 2.0,
        }
    }
}

/// Actor-critic with a shared trunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorCritic {
    trunk: Mlp,
    actor: Mlp,
    critic: Mlp,
    state_dim: usize,
    #[serde(skip)]
    cached_probs: Option<Matrix>,
}

impl ActorCritic {
    /// Number of discrete actions (charge / discharge / idle).
    pub const NUM_ACTIONS: usize = 3;

    /// Creates a network for the given observation dimension.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim` is zero or the trunk is configured empty.
    pub fn new(state_dim: usize, config: &ActorCriticConfig, rng: &mut EctRng) -> Self {
        assert!(state_dim > 0, "state dimension must be positive");
        assert!(
            !config.trunk_hidden.is_empty(),
            "trunk needs at least one layer"
        );
        let mut trunk_widths = vec![state_dim];
        trunk_widths.extend_from_slice(&config.trunk_hidden);
        let trunk_out = *trunk_widths.last().expect("trunk widths");

        let mut actor_widths = vec![trunk_out];
        actor_widths.extend_from_slice(&config.actor_hidden);
        actor_widths.push(Self::NUM_ACTIONS);

        let mut critic_widths = vec![trunk_out];
        critic_widths.extend_from_slice(&config.critic_hidden);
        critic_widths.push(1);

        let mut actor = Mlp::new(&actor_widths, ActivationKind::Tanh, rng);
        if config.idle_bias != 0.0 {
            actor.set_output_bias(BpAction::Idle.index(), config.idle_bias);
        }

        Self {
            trunk: Mlp::new(&trunk_widths, ActivationKind::Tanh, rng)
                .with_output_activation(ActivationKind::Tanh),
            actor,
            critic: Mlp::new(&critic_widths, ActivationKind::Tanh, rng),
            state_dim,
            cached_probs: None,
        }
    }

    /// Observation dimension this network expects.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Training-mode forward pass: `(action probs n×3, values n×1)`.
    ///
    /// # Panics
    ///
    /// Panics if the state width mismatches.
    pub fn forward(&mut self, states: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(states.cols(), self.state_dim, "state width mismatch");
        let features = self.trunk.forward(states);
        let logits = self.actor.forward(&features);
        let probs = softmax_rows(&logits);
        let values = self.critic.forward(&features);
        self.cached_probs = Some(probs.clone());
        (probs, values)
    }

    /// Inference-mode forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the state width mismatches.
    pub fn infer(&self, states: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(states.cols(), self.state_dim, "state width mismatch");
        let features = self.trunk.infer(states);
        let probs = softmax_rows(&self.actor.infer(&features));
        let values = self.critic.infer(&features);
        (probs, values)
    }

    /// Action probabilities and value for one state.
    pub fn evaluate_one(&self, state: &[f64]) -> ([f64; 3], f64) {
        let m = Matrix::row_vector(state);
        let (p, v) = self.infer(&m);
        ([p[(0, 0)], p[(0, 1)], p[(0, 2)]], v[(0, 0)])
    }

    /// Samples an action from the policy; returns `(action, prob_of_action,
    /// value)`.
    pub fn sample_action(&self, state: &[f64], rng: &mut EctRng) -> (BpAction, f64, f64) {
        let (probs, value) = self.evaluate_one(state);
        let idx = rng.categorical(&probs);
        (BpAction::from_index(idx), probs[idx], value)
    }

    /// Greedy (argmax) action for evaluation.
    pub fn greedy_action(&self, state: &[f64]) -> BpAction {
        let (probs, _) = self.evaluate_one(state);
        let idx = (0..3)
            .max_by(|&a, &b| probs[a].total_cmp(&probs[b]))
            .expect("three actions");
        BpAction::from_index(idx)
    }

    /// Backward pass from `dL/dprobs` and `dL/dvalues`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ActorCritic::forward`].
    pub fn backward(&mut self, grad_probs: &Matrix, grad_values: &Matrix) {
        let probs = self.cached_probs.take().expect("backward before forward");
        let grad_logits = softmax_backward(&probs, grad_probs);
        let grad_feat_actor = self.actor.backward(&grad_logits);
        let grad_feat_critic = self.critic.backward(grad_values);
        self.trunk.backward(&grad_feat_actor.add(&grad_feat_critic));
    }
}

impl Parameterized for ActorCritic {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.trunk.for_each_param(f);
        self.actor.for_each_param(f);
        self.critic.for_each_param(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ect_nn::gradcheck::finite_difference;

    fn net() -> ActorCritic {
        let mut rng = EctRng::seed_from(41);
        ActorCritic::new(
            6,
            &ActorCriticConfig {
                trunk_hidden: vec![8],
                actor_hidden: vec![6],
                critic_hidden: vec![6],
                idle_bias: 0.0,
            },
            &mut rng,
        )
    }

    #[test]
    fn outputs_have_correct_shapes() {
        let mut n = net();
        let states = Matrix::zeros(5, 6);
        let (p, v) = n.forward(&states);
        assert_eq!(p.shape(), (5, 3));
        assert_eq!(v.shape(), (5, 1));
        for r in 0..5 {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut n = net();
        let s = Matrix::from_rows(&[&[0.1, -0.4, 0.9, 0.0, 0.5, -0.2]]);
        let (p1, v1) = n.forward(&s);
        let (p2, v2) = n.infer(&s);
        assert!(p1.sub(&p2).max_abs() < 1e-12);
        assert!(v1.sub(&v2).max_abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_probabilities() {
        let n = net();
        let mut rng = EctRng::seed_from(42);
        let state = vec![0.2; 6];
        let (probs, _) = n.evaluate_one(&state);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            let (a, p, _) = n.sample_action(&state, &mut rng);
            counts[a.index()] += 1;
            assert!((p - probs[a.index()]).abs() < 1e-12);
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / 9000.0;
            assert!(
                (freq - probs[i]).abs() < 0.03,
                "action {i}: {freq} vs {}",
                probs[i]
            );
        }
    }

    #[test]
    fn greedy_picks_the_argmax() {
        let n = net();
        let state = vec![0.7; 6];
        let (probs, _) = n.evaluate_one(&state);
        let best = (0..3)
            .max_by(|&a, &b| probs[a].total_cmp(&probs[b]))
            .unwrap();
        assert_eq!(n.greedy_action(&state).index(), best);
    }

    #[test]
    fn joint_gradients_match_finite_difference() {
        let mut n = net();
        let states = Matrix::from_rows(&[
            &[0.1, -0.2, 0.3, 0.4, -0.5, 0.6],
            &[0.9, 0.8, -0.7, 0.6, 0.5, -0.4],
        ]);
        // A made-up differentiable loss touching both heads:
        // L = Σ w·probs + Σ values².
        let w = Matrix::from_rows(&[&[0.3, -0.5, 1.1], &[-0.2, 0.7, 0.4]]);
        let (_probs, values) = n.forward(&states);
        let grad_probs = w.clone();
        let grad_values = values.map(|v| 2.0 * v);
        n.backward(&grad_probs, &grad_values);

        let err = finite_difference(
            &mut n,
            |model| {
                let (p, v) = model.infer(&states);
                p.hadamard(&w).sum() + v.as_slice().iter().map(|x| x * x).sum::<f64>()
            },
            1e-6,
        );
        assert!(err < 1e-5, "max grad error {err}");
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn rejects_wrong_state_width() {
        let mut n = net();
        let _ = n.forward(&Matrix::zeros(1, 5));
    }

    #[test]
    fn idle_bias_makes_idle_the_initial_default() {
        let mut rng = EctRng::seed_from(43);
        let n = ActorCritic::new(
            6,
            &ActorCriticConfig {
                idle_bias: 2.0,
                ..ActorCriticConfig::default()
            },
            &mut rng,
        );
        // Averaged over many random states, the untrained policy should put
        // most of its mass on Idle.
        let mut idle_mass = 0.0;
        for _ in 0..200 {
            let state: Vec<f64> = (0..6).map(|_| rng.normal(0.0, 0.5)).collect();
            let (p, _) = n.evaluate_one(&state);
            idle_mass += p[BpAction::Idle.index()];
        }
        idle_mass /= 200.0;
        assert!(idle_mass > 0.6, "idle mass {idle_mass}");
    }
}
