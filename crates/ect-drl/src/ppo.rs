//! Proximal Policy Optimization (Eqs. 25–28 of the paper).
//!
//! The clipped surrogate objective
//! `L_clip = Ê[min(r_t Â_t, clip(r_t, 1−ε, 1+ε) Â_t)]` with
//! `r_t = π_θ(a|s) / π_old(a|s)` keeps each policy step inside a trust
//! region; the total loss adds the critic regression
//! `L = L_clip − c·MSE(V)` (Eq. 27), plus an optional entropy bonus (not in
//! the paper; default small, ablatable to zero) that prevents premature
//! collapse onto a single action.

use crate::actor_critic::ActorCritic;
use crate::rollout::RolloutBuffer;
use ect_nn::loss::mse;
use ect_nn::matrix::Matrix;
use ect_nn::optim::{Adam, AdamConfig};
use ect_nn::param::Parameterized;
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// PPO hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// Clip range ε (Eq. 25).
    pub clip_epsilon: f64,
    /// Critic loss coefficient `c` (Eq. 27).
    pub value_coef: f64,
    /// Entropy bonus coefficient (0 = the paper's exact objective).
    pub entropy_coef: f64,
    /// Optimisation epochs per collected buffer.
    pub update_epochs: usize,
    /// Minibatch size within an update.
    pub minibatch_size: usize,
    /// Gradient-norm clip.
    pub max_grad_norm: f64,
    /// Optimizer settings (the paper: Adam, lr 1e-3, weight decay 1e-4).
    pub adam: AdamConfig,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            value_coef: 0.5,
            entropy_coef: 0.01,
            update_epochs: 4,
            minibatch_size: 64,
            max_grad_norm: 0.5,
            adam: AdamConfig::paper_drl(),
        }
    }
}

impl PpoConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for out-of-range
    /// values.
    pub fn validate(&self) -> ect_types::Result<()> {
        if !(0.0..=1.0).contains(&self.gamma) || !(0.0..=1.0).contains(&self.gae_lambda) {
            return Err(ect_types::EctError::InvalidConfig(
                "gamma and lambda must lie in [0, 1]".into(),
            ));
        }
        if self.clip_epsilon <= 0.0 || self.clip_epsilon >= 1.0 {
            return Err(ect_types::EctError::InvalidConfig(
                "clip epsilon must lie in (0, 1)".into(),
            ));
        }
        if self.value_coef < 0.0 || self.entropy_coef < 0.0 {
            return Err(ect_types::EctError::InvalidConfig(
                "loss coefficients must be non-negative".into(),
            ));
        }
        if self.update_epochs == 0 || self.minibatch_size == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "update epochs and minibatch size must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Diagnostics from one PPO update.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Mean clipped-surrogate objective (higher is better).
    pub policy_objective: f64,
    /// Mean critic MSE.
    pub value_loss: f64,
    /// Mean policy entropy.
    pub entropy: f64,
    /// Fraction of samples where the ratio was clipped.
    pub clip_fraction: f64,
}

/// The PPO learner: owns the optimizer state.
#[derive(Debug)]
pub struct Ppo {
    config: PpoConfig,
    optimizer: Adam,
}

impl Ppo {
    /// Creates a learner.
    ///
    /// # Errors
    ///
    /// Propagates [`PpoConfig::validate`] failures.
    pub fn new(config: PpoConfig) -> ect_types::Result<Self> {
        config.validate()?;
        let optimizer = Adam::new(config.adam.clone());
        Ok(Self { config, optimizer })
    }

    /// Configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Runs one PPO update over the buffer, mutating the policy in place.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InsufficientData`] on an empty buffer
    /// or [`ect_types::EctError::Diverged`] if parameters go non-finite.
    pub fn update(
        &mut self,
        policy: &mut ActorCritic,
        buffer: &RolloutBuffer,
        rng: &mut EctRng,
    ) -> ect_types::Result<UpdateStats> {
        if buffer.is_empty() {
            return Err(ect_types::EctError::InsufficientData(
                "PPO update needs at least one transition".into(),
            ));
        }
        let cfg = &self.config;
        let (mut advantages, returns) = buffer.gae(cfg.gamma, cfg.gae_lambda);
        RolloutBuffer::normalise(&mut advantages);
        let transitions = buffer.transitions();
        let n = transitions.len();

        let mut stats = UpdateStats::default();
        let mut stat_batches = 0usize;

        for _ in 0..cfg.update_epochs {
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.minibatch_size) {
                let b = chunk.len();
                let mut states = Matrix::zeros(b, policy.state_dim());
                for (row, &i) in chunk.iter().enumerate() {
                    states.row_mut(row).copy_from_slice(&transitions[i].state);
                }
                let (probs, values) = policy.forward(&states);

                // Policy gradient through the clipped surrogate.
                let mut grad_probs = Matrix::zeros(b, 3);
                let mut objective = 0.0;
                let mut entropy = 0.0;
                let mut clipped = 0usize;
                for (row, &i) in chunk.iter().enumerate() {
                    let t = &transitions[i];
                    let adv = advantages[i];
                    let p_new = probs[(row, t.action)].max(1e-12);
                    let ratio = p_new / t.action_prob.max(1e-12);
                    let unclipped = ratio * adv;
                    let clipped_ratio = ratio.clamp(1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon);
                    let clipped_obj = clipped_ratio * adv;
                    objective += unclipped.min(clipped_obj);
                    if unclipped <= clipped_obj {
                        // Unclipped branch active: d(min)/dp = adv / π_old.
                        // We *descend* on −objective.
                        grad_probs[(row, t.action)] -= adv / t.action_prob.max(1e-12) / b as f64;
                    } else {
                        clipped += 1;
                    }
                    // Entropy bonus: L −= β·H, H = −Σ p ln p,
                    // dH/dp_j = −(ln p_j + 1).
                    for j in 0..3 {
                        let pj = probs[(row, j)].max(1e-12);
                        entropy -= pj * pj.ln();
                        if cfg.entropy_coef > 0.0 {
                            grad_probs[(row, j)] += cfg.entropy_coef * (pj.ln() + 1.0) / b as f64;
                        }
                    }
                }

                // Critic regression toward GAE returns (Eq. 27's MSE term).
                let target = Matrix::from_vec(b, 1, chunk.iter().map(|&i| returns[i]).collect());
                let (value_loss, mut grad_values) = mse(&values, &target);
                grad_values.scale(cfg.value_coef);

                policy.backward(&grad_probs, &grad_values);
                policy.clip_grad_norm(cfg.max_grad_norm);
                self.optimizer.step(policy);

                if policy.any_non_finite() {
                    return Err(ect_types::EctError::Diverged(
                        "PPO parameters became non-finite".into(),
                    ));
                }

                stats.policy_objective += objective / b as f64;
                stats.value_loss += value_loss;
                stats.entropy += entropy / b as f64;
                stats.clip_fraction += clipped as f64 / b as f64;
                stat_batches += 1;
            }
        }
        let denom = stat_batches.max(1) as f64;
        stats.policy_objective /= denom;
        stats.value_loss /= denom;
        stats.entropy /= denom;
        stats.clip_fraction /= denom;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor_critic::ActorCriticConfig;
    use crate::rollout::Transition;

    fn tiny_policy(rng: &mut EctRng) -> ActorCritic {
        ActorCritic::new(
            2,
            &ActorCriticConfig {
                trunk_hidden: vec![8],
                actor_hidden: vec![],
                critic_hidden: vec![],
                idle_bias: 0.0,
            },
            rng,
        )
    }

    /// A two-state contextual bandit: in state [1,0] action 0 pays 1, in
    /// state [0,1] action 1 pays 1; everything else pays 0.
    fn bandit_buffer(policy: &ActorCritic, rng: &mut EctRng, episodes: usize) -> RolloutBuffer {
        let mut buf = RolloutBuffer::new();
        for e in 0..episodes {
            let state = if e % 2 == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            let (action, prob, value) = policy.sample_action(&state, rng);
            let want = if e % 2 == 0 { 0 } else { 1 };
            let reward = if action.index() == want { 1.0 } else { 0.0 };
            buf.push(Transition {
                state,
                action: action.index(),
                action_prob: prob,
                reward,
                value,
                done: true,
            });
        }
        buf
    }

    #[test]
    fn ppo_solves_a_contextual_bandit() {
        let mut rng = EctRng::seed_from(7);
        let mut policy = tiny_policy(&mut rng);
        let mut ppo = Ppo::new(PpoConfig {
            update_epochs: 4,
            minibatch_size: 32,
            entropy_coef: 0.005,
            ..PpoConfig::default()
        })
        .unwrap();
        for _ in 0..60 {
            let buf = bandit_buffer(&policy, &mut rng, 128);
            ppo.update(&mut policy, &buf, &mut rng).unwrap();
        }
        let (p_a, _) = policy.evaluate_one(&[1.0, 0.0]);
        let (p_b, _) = policy.evaluate_one(&[0.0, 1.0]);
        assert!(p_a[0] > 0.8, "state A policy {p_a:?}");
        assert!(p_b[1] > 0.8, "state B policy {p_b:?}");
    }

    #[test]
    fn critic_learns_state_values() {
        // With a fixed random policy, the critic should regress toward the
        // expected rewards of the two bandit states.
        let mut rng = EctRng::seed_from(8);
        let mut policy = tiny_policy(&mut rng);
        let mut ppo = Ppo::new(PpoConfig {
            entropy_coef: 0.5, // keep the policy near-uniform
            ..PpoConfig::default()
        })
        .unwrap();
        for _ in 0..40 {
            let buf = bandit_buffer(&policy, &mut rng, 64);
            ppo.update(&mut policy, &buf, &mut rng).unwrap();
        }
        let (_, v_a) = policy.evaluate_one(&[1.0, 0.0]);
        assert!(v_a.is_finite());
        assert!(v_a > 0.05 && v_a < 1.0, "value {v_a}");
    }

    #[test]
    fn update_reports_stats() {
        let mut rng = EctRng::seed_from(9);
        let mut policy = tiny_policy(&mut rng);
        let mut ppo = Ppo::new(PpoConfig::default()).unwrap();
        let buf = bandit_buffer(&policy, &mut rng, 64);
        let stats = ppo.update(&mut policy, &buf, &mut rng).unwrap();
        assert!(stats.entropy > 0.0 && stats.entropy <= (3.0f64).ln() + 1e-9);
        assert!((0.0..=1.0).contains(&stats.clip_fraction));
        assert!(stats.value_loss >= 0.0);
    }

    #[test]
    fn empty_buffer_is_rejected() {
        let mut rng = EctRng::seed_from(10);
        let mut policy = tiny_policy(&mut rng);
        let mut ppo = Ppo::new(PpoConfig::default()).unwrap();
        assert!(ppo
            .update(&mut policy, &RolloutBuffer::new(), &mut rng)
            .is_err());
    }

    #[test]
    fn config_validation() {
        assert!(PpoConfig {
            gamma: 1.5,
            ..PpoConfig::default()
        }
        .validate()
        .is_err());
        assert!(PpoConfig {
            clip_epsilon: 0.0,
            ..PpoConfig::default()
        }
        .validate()
        .is_err());
        assert!(PpoConfig {
            update_epochs: 0,
            ..PpoConfig::default()
        }
        .validate()
        .is_err());
        assert!(PpoConfig {
            value_coef: -1.0,
            ..PpoConfig::default()
        }
        .validate()
        .is_err());
        assert!(PpoConfig::default().validate().is_ok());
    }
}
