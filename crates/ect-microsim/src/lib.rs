//! ECT-Microsim: user-level demand microsimulation.
//!
//! The rest of the workspace treats hub demand as exogenous aggregate
//! series ([`ect_data::traffic::TrafficGenerator`]). This crate makes
//! "heavy traffic from millions of users" literal: it simulates N
//! individual UEs moving on the [`ect_data::spatial::Region`] road graph —
//! structure-of-arrays position/route/speed/activity lanes, commute waves
//! and scripted flash-crowd surges — associates every UE to its nearest
//! hub each slot through a uniform-grid spatial hash, and aggregates
//! distance-weighted (pathloss) per-UE load into per-hub traffic and
//! EV-arrival series.
//!
//! The output ([`MicrosimDemand`]) is a drop-in demand source: its series
//! plug into `ect_env`'s episode/fleet builders exactly where the
//! aggregate generator's series go today (opt-in; the aggregate paths are
//! untouched).
//!
//! # Determinism
//!
//! Every draw is a stateless hash of `(seed, UE index, slot)` and shard
//! partials fold in a fixed order, so the demand is **bit-identical across
//! thread counts** and pure in `(config, region, hubs, slots, seed)` —
//! the property that lets the session layer memoise it through the
//! disk-cache tiers.
//!
//! # Example
//!
//! ```
//! use ect_microsim::{synthesize_demand, MicrosimConfig};
//! use ect_data::spatial::{Region, RegionConfig};
//! use ect_types::rng::EctRng;
//!
//! let region = Region::generate(
//!     &RegionConfig { num_base_stations: 200, ..RegionConfig::default() },
//!     &mut EctRng::seed_from(7),
//! )?;
//! let config = MicrosimConfig { num_ues: 2_000, ..MicrosimConfig::default() };
//! let demand = synthesize_demand(&config, &region, 4, 24, 42)?;
//! assert_eq!(demand.traffic.len(), 4);
//! assert_eq!(demand.total_associations, 2_000 * 24);
//! # Ok::<(), ect_types::EctError>(())
//! ```

pub mod config;
pub mod engine;
pub mod grid;

pub use config::{FlashCrowd, MicrosimConfig};
pub use engine::{
    hub_sites, record_throughput, synthesize_demand, DemandAccumulator, HubPartial, MicrosimDemand,
    MicrosimEngine, UeShard, SHARD_UES,
};
pub use grid::{nearest_brute_force, SpatialHash};
