//! Uniform-grid spatial hash for UE → nearest-hub association.
//!
//! The association step runs once per UE per slot, so a full scan over hub
//! sites would put an `O(hubs)` factor on the hottest loop. The hash
//! buckets hub sites into a square grid sized so a query touches a handful
//! of cells: start at the query's cell and scan outward ring by ring,
//! stopping once no unvisited ring can hold a closer site than the best
//! found so far.
//!
//! The result is **exactly** the brute-force nearest site (ties broken by
//! the lower hub index) — pinned by a proptest against random scatters.

use ect_data::spatial::Point;

fn dist(a: Point, b: Point) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Square-grid spatial hash over hub sites.
#[derive(Debug, Clone)]
pub struct SpatialHash {
    cell_km: f64,
    cells_per_side: usize,
    sites: Vec<Point>,
    /// Hub indices per cell, row-major, each bucket sorted ascending.
    buckets: Vec<Vec<u32>>,
}

impl SpatialHash {
    /// Builds the hash for `sites` inside the `[0, size_km]²` region.
    ///
    /// Sites outside the square are clamped into it for bucketing (their
    /// exact coordinates still decide distances). The cell size defaults
    /// to roughly one site per cell when `cell_km` is not positive.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for an empty site
    /// list or a non-positive region size.
    pub fn new(sites: &[Point], size_km: f64, cell_km: f64) -> ect_types::Result<Self> {
        if sites.is_empty() {
            return Err(ect_types::EctError::InvalidConfig(
                "spatial hash needs at least one site".into(),
            ));
        }
        if !size_km.is_finite() || size_km <= 0.0 {
            return Err(ect_types::EctError::InvalidConfig(format!(
                "spatial hash region size must be positive, got {size_km}"
            )));
        }
        let cell_km = if cell_km.is_finite() && cell_km > 0.0 {
            cell_km
        } else {
            // ~1 site per cell keeps ring searches shallow without
            // ballooning the bucket table for sparse fleets.
            size_km / (sites.len() as f64).sqrt().ceil().max(1.0)
        };
        let cells_per_side = ((size_km / cell_km).ceil() as usize).max(1);
        let mut hash = Self {
            cell_km,
            cells_per_side,
            sites: sites.to_vec(),
            buckets: vec![Vec::new(); cells_per_side * cells_per_side],
        };
        for (idx, &site) in sites.iter().enumerate() {
            let cell = hash.cell_of(site);
            hash.buckets[cell].push(idx as u32);
        }
        // Buckets are filled in site order, so they are already sorted
        // ascending — which makes the tie-break below deterministic.
        Ok(hash)
    }

    /// Number of sites in the hash.
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    fn axis_cell(&self, v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        ((v / self.cell_km) as usize).min(self.cells_per_side - 1)
    }

    fn cell_of(&self, p: Point) -> usize {
        self.axis_cell(p.1) * self.cells_per_side + self.axis_cell(p.0)
    }

    fn scan_cell(&self, cx: usize, cy: usize, p: Point, best: &mut (u32, f64)) {
        for &idx in &self.buckets[cy * self.cells_per_side + cx] {
            let d = dist(p, self.sites[idx as usize]);
            if d < best.1 || (d == best.1 && idx < best.0) {
                *best = (idx, d);
            }
        }
    }

    /// The site nearest to `p` (lowest index on exact ties) and its
    /// distance — identical to a brute-force scan over all sites.
    #[must_use]
    pub fn nearest(&self, p: Point) -> (usize, f64) {
        let n = self.cells_per_side;
        let cx = self.axis_cell(p.0);
        let cy = self.axis_cell(p.1);
        let mut best: (u32, f64) = (u32::MAX, f64::INFINITY);
        for ring in 0..n {
            // Any site in ring `r` is at least `(r - 1) · cell` away from
            // `p` (the query may sit anywhere inside its own cell), so once
            // the best distance beats that bound no farther ring matters.
            if best.0 != u32::MAX && (ring as f64 - 1.0) * self.cell_km > best.1 {
                break;
            }
            let x_lo = cx.saturating_sub(ring);
            let x_hi = (cx + ring).min(n - 1);
            let y_lo = cy.saturating_sub(ring);
            let y_hi = (cy + ring).min(n - 1);
            if ring == 0 {
                self.scan_cell(cx, cy, p, &mut best);
                continue;
            }
            for x in x_lo..=x_hi {
                if cy >= ring {
                    self.scan_cell(x, cy - ring, p, &mut best);
                }
                if cy + ring < n {
                    self.scan_cell(x, cy + ring, p, &mut best);
                }
            }
            // Vertical edges, corners already covered by the rows above.
            let y_start = y_lo + usize::from(cy >= ring);
            let y_end = y_hi.saturating_sub(usize::from(cy + ring < n));
            for y in y_start..=y_end {
                if cx >= ring {
                    self.scan_cell(cx - ring, y, p, &mut best);
                }
                if cx + ring < n {
                    self.scan_cell(cx + ring, y, p, &mut best);
                }
            }
        }
        debug_assert!(best.0 != u32::MAX, "grid holds at least one site");
        (best.0 as usize, best.1)
    }
}

/// Brute-force nearest site (lowest index on ties) — the reference the
/// hash must match, public for the correctness proptests.
#[must_use]
pub fn nearest_brute_force(sites: &[Point], p: Point) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (idx, &site) in sites.iter().enumerate() {
        let d = dist(p, site);
        if d < best.1 {
            best = (idx, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ect_types::rng::EctRng;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(SpatialHash::new(&[], 100.0, 5.0).is_err());
        assert!(SpatialHash::new(&[(1.0, 1.0)], 0.0, 5.0).is_err());
    }

    #[test]
    fn single_site_is_always_nearest() {
        let hash = SpatialHash::new(&[(40.0, 60.0)], 100.0, 0.0).unwrap();
        let (idx, d) = hash.nearest((0.0, 0.0));
        assert_eq!(idx, 0);
        assert!((d - (40.0f64.powi(2) + 60.0f64.powi(2)).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_a_seeded_scatter() {
        let mut rng = EctRng::seed_from(7);
        let sites: Vec<Point> = (0..50)
            .map(|_| (rng.uniform_in(0.0, 200.0), rng.uniform_in(0.0, 200.0)))
            .collect();
        let hash = SpatialHash::new(&sites, 200.0, 0.0).unwrap();
        for _ in 0..500 {
            let p = (rng.uniform_in(-10.0, 210.0), rng.uniform_in(-10.0, 210.0));
            assert_eq!(hash.nearest(p), nearest_brute_force(&sites, p));
        }
    }

    proptest! {
        /// The satellite pin: hash association equals brute-force
        /// nearest-hub on random scatters, queries included off-grid.
        #[test]
        fn hash_matches_brute_force(
            seed in 0u64..1_000,
            num_sites in 1usize..40,
            cell_pick in 0usize..4,
        ) {
            let cell = [0.0, 3.0, 17.0, 250.0][cell_pick];
            let mut rng = EctRng::seed_from(seed);
            let sites: Vec<Point> = (0..num_sites)
                .map(|_| (rng.uniform_in(0.0, 100.0), rng.uniform_in(0.0, 100.0)))
                .collect();
            let hash = SpatialHash::new(&sites, 100.0, cell).unwrap();
            for _ in 0..32 {
                let p = (rng.uniform_in(-20.0, 120.0), rng.uniform_in(-20.0, 120.0));
                prop_assert_eq!(hash.nearest(p), nearest_brute_force(&sites, p));
            }
        }
    }
}
