//! The SoA particle engine: UE mobility on the road graph, per-slot
//! association through the spatial hash, and pathloss-weighted aggregation
//! into per-hub demand series.
//!
//! # Determinism contract
//!
//! Every per-UE draw is a pure hash of `(seed, ue index, slot)` — no
//! sequential RNG stream crosses UE or slot boundaries — and UEs are
//! partitioned into fixed-size shards ([`SHARD_UES`]) whose partial sums
//! are folded in shard order. The synthesized demand is therefore
//! bit-identical no matter how many threads step the shards, and pure in
//! `(config, region, num_hubs, slots, seed)`; `tests/` pins both
//! properties.

use crate::config::MicrosimConfig;
use crate::grid::SpatialHash;
use ect_data::rtp::demand_shape;
use ect_data::spatial::{Point, Region, RoadKind};
use ect_data::traffic::TrafficSample;
use ect_types::time::SLOTS_PER_DAY;
use ect_types::units::LoadRate;
use serde::{Deserialize, Serialize};

/// UEs per shard: the unit of parallel work. Fixed (never derived from the
/// thread count) so the shard partition — and with it the floating-point
/// fold order — is identical on every machine.
pub const SHARD_UES: usize = 4096;

/// Representative sample cap per flash crowd; larger populations are
/// scaled, keeping event cost bounded while the aggregate load matches.
const CROWD_SAMPLES: usize = 2048;

/// Stream separators for the stateless per-UE hash draws.
const STREAM_INIT: u64 = 0x0515_AB1E;
const STREAM_STEP: u64 = 0x57E9_0DD5;
const STREAM_CROWD: u64 = 0xC09D_FACE;

/// SplitMix64 finaliser: the stateless mixing primitive behind every
/// microsim draw.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from 64 hashed bits.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Decorrelates a UE index before mixing (consecutive integers would
/// otherwise share most of their bits).
#[inline]
fn spread(ue: u64) -> u64 {
    ue.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Flattened road geometry: everything the hot loop needs per segment,
/// laid out as parallel arrays.
#[derive(Debug, Clone)]
struct RoadTable {
    ax: Vec<f64>,
    ay: Vec<f64>,
    dx: Vec<f64>,
    dy: Vec<f64>,
    len_km: Vec<f64>,
    speed_kmh: Vec<f64>,
    /// Cumulative segment length, for length-weighted sampling.
    cum_len: Vec<f64>,
    total_len: f64,
}

impl RoadTable {
    fn new(region: &Region, config: &MicrosimConfig) -> Self {
        let n = region.roads.len();
        let mut table = Self {
            ax: Vec::with_capacity(n),
            ay: Vec::with_capacity(n),
            dx: Vec::with_capacity(n),
            dy: Vec::with_capacity(n),
            len_km: Vec::with_capacity(n),
            speed_kmh: Vec::with_capacity(n),
            cum_len: Vec::with_capacity(n),
            total_len: 0.0,
        };
        for road in &region.roads {
            table.ax.push(road.a.0);
            table.ay.push(road.a.1);
            table.dx.push(road.b.0 - road.a.0);
            table.dy.push(road.b.1 - road.a.1);
            table.len_km.push(road.length().max(1e-9));
            table.speed_kmh.push(match road.kind {
                RoadKind::Highway => config.highway_speed_kmh,
                RoadKind::Urban => config.urban_speed_kmh,
            });
            table.total_len += road.length();
            table.cum_len.push(table.total_len);
        }
        table
    }

    /// Length-weighted segment pick from one uniform draw.
    #[inline]
    fn sample_segment(&self, u: f64) -> u32 {
        let x = u * self.total_len;
        self.cum_len
            .partition_point(|&c| c <= x)
            .min(self.cum_len.len() - 1) as u32
    }

    #[inline]
    fn point_at(&self, seg: u32, t: f64) -> Point {
        let s = seg as usize;
        (self.ax[s] + t * self.dx[s], self.ay[s] + t * self.dy[s])
    }
}

/// One shard of the UE population, structure-of-arrays: each lane holds
/// one attribute for [`SHARD_UES`] (or fewer, in the tail shard) UEs.
#[derive(Debug, Clone)]
pub struct UeShard {
    /// Global index of the shard's first UE.
    base: u64,
    seg: Vec<u32>,
    t: Vec<f64>,
    dir: Vec<f64>,
    /// Current speed, km per slot (kind speed × personal jitter).
    speed: Vec<f64>,
    /// Personal speed jitter, re-applied when the UE hops segments.
    jitter: Vec<f64>,
    /// Personal demand multiplier.
    activity: Vec<f64>,
    is_ev: Vec<bool>,
}

impl UeShard {
    /// UEs in this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seg.len()
    }

    /// `true` when the shard holds no UEs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seg.is_empty()
    }
}

/// Per-shard, per-slot partial aggregate: pathloss-weighted load and EV
/// arrival mass per hub. Folded in shard order by
/// [`MicrosimEngine::fold`].
#[derive(Debug, Clone)]
pub struct HubPartial {
    load: Vec<f64>,
    ev: Vec<f64>,
    associations: u64,
}

/// Running `[hub][slot]` aggregation across the whole horizon.
#[derive(Debug, Clone)]
pub struct DemandAccumulator {
    load: Vec<Vec<f64>>,
    ev: Vec<Vec<f64>>,
    associations: u64,
}

/// The synthesized demand: per-hub traffic and EV-arrival series, plus the
/// hub sites they were aggregated against. Serialisable — this is the
/// artifact the session disk cache stores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicrosimDemand {
    /// Simulated population size.
    pub num_ues: usize,
    /// Hubs the load was aggregated onto.
    pub num_hubs: usize,
    /// Horizon in slots.
    pub slots: usize,
    /// Hub positions (stride-sited on the region's base stations, the same
    /// rule as [`ect_data::topology::HubTopology::from_region`]).
    pub hub_sites: Vec<Point>,
    /// Per-hub traffic series, `traffic[hub][slot]`.
    pub traffic: Vec<Vec<TrafficSample>>,
    /// Per-hub expected EV arrivals, `ev_arrivals[hub][slot]`.
    pub ev_arrivals: Vec<Vec<f64>>,
    /// Total UE→hub associations performed (UEs × slots).
    pub total_associations: u64,
}

impl MicrosimDemand {
    /// Peak load rate of one hub across the horizon.
    ///
    /// # Panics
    ///
    /// Panics when `hub` is out of range.
    #[must_use]
    pub fn hub_peak(&self, hub: usize) -> f64 {
        self.traffic[hub]
            .iter()
            .map(|s| s.load_rate.as_f64())
            .fold(0.0, f64::max)
    }

    /// Peak load rate across all hubs and slots.
    #[must_use]
    pub fn peak_load_rate(&self) -> f64 {
        (0..self.num_hubs)
            .map(|h| self.hub_peak(h))
            .fold(0.0, f64::max)
    }

    /// Mean load rate across all hubs and slots.
    #[must_use]
    pub fn mean_load_rate(&self) -> f64 {
        let total: f64 = self
            .traffic
            .iter()
            .flat_map(|series| series.iter())
            .map(|s| s.load_rate.as_f64())
            .sum();
        total / (self.num_hubs * self.slots).max(1) as f64
    }

    /// The per-hub series as `Arc` slices, ready for
    /// `fleet_env_for_hubs_with_traffic`-style consumers.
    #[must_use]
    pub fn traffic_arcs(&self) -> Vec<std::sync::Arc<[TrafficSample]>> {
        self.traffic
            .iter()
            .map(|series| series.as_slice().into())
            .collect()
    }
}

/// Hub positions for a region: evenly strided over its base stations —
/// exactly the siting rule of
/// [`ect_data::topology::HubTopology::from_region`], so the microsim's
/// geography agrees with the coupling topology's.
///
/// # Errors
///
/// Returns [`ect_types::EctError::InvalidConfig`] for zero hubs and
/// [`ect_types::EctError::InsufficientData`] when the region holds fewer
/// base stations than hubs.
pub fn hub_sites(region: &Region, num_hubs: usize) -> ect_types::Result<Vec<Point>> {
    if num_hubs == 0 {
        return Err(ect_types::EctError::InvalidConfig(
            "microsim needs at least one hub".into(),
        ));
    }
    if region.base_stations.len() < num_hubs {
        return Err(ect_types::EctError::InsufficientData(format!(
            "region has {} base stations, cannot site {num_hubs} hubs",
            region.base_stations.len()
        )));
    }
    let stride = region.base_stations.len() / num_hubs;
    Ok((0..num_hubs)
        .map(|hub| region.base_stations[hub * stride])
        .collect())
}

/// The microsimulation engine: immutable shared state (road table, hub
/// grid, config) plus the pure shard-step kernel. `Sync`, so shards can be
/// stepped from any number of worker threads.
#[derive(Debug, Clone)]
pub struct MicrosimEngine {
    config: MicrosimConfig,
    roads: RoadTable,
    grid: SpatialHash,
    sites: Vec<Point>,
    slots: usize,
    seed: u64,
    /// Per crowd: sampled `(hub, pathloss weight)` pairs plus the
    /// population scale they stand for.
    crowd_assoc: Vec<(Vec<(u32, f64)>, f64)>,
}

impl MicrosimEngine {
    /// Validates the inputs and precomputes the road table, the hub
    /// spatial hash and the flash-crowd associations.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for an invalid
    /// config, an empty road graph, zero hubs or zero slots, and
    /// [`ect_types::EctError::InsufficientData`] when the region cannot
    /// site `num_hubs` hubs.
    pub fn new(
        config: &MicrosimConfig,
        region: &Region,
        num_hubs: usize,
        slots: usize,
        seed: u64,
    ) -> ect_types::Result<Self> {
        config.validate()?;
        if region.roads.is_empty() {
            return Err(ect_types::EctError::InvalidConfig(
                "microsim needs a region with at least one road segment".into(),
            ));
        }
        if slots == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "microsim needs at least one slot".into(),
            ));
        }
        let sites = hub_sites(region, num_hubs)?;
        let grid = SpatialHash::new(&sites, region.size_km, 0.0)?;
        let roads = RoadTable::new(region, config);
        let mut engine = Self {
            config: config.clone(),
            roads,
            grid,
            sites,
            slots,
            seed,
            crowd_assoc: Vec::new(),
        };
        engine.crowd_assoc = engine.associate_crowds(region);
        Ok(engine)
    }

    /// Samples every flash crowd's scatter once and associates the sample
    /// points — crowds are static while active, so their hub weights never
    /// change across the window.
    fn associate_crowds(&self, region: &Region) -> Vec<(Vec<(u32, f64)>, f64)> {
        self.config
            .flash_crowds
            .iter()
            .enumerate()
            .map(|(event, crowd)| {
                let anchor = region.roads[crowd.road % region.roads.len()].point_at(0.5);
                let samples = crowd.population.min(CROWD_SAMPLES);
                let scale = crowd.population as f64 / samples as f64;
                let assoc = (0..samples)
                    .map(|k| {
                        let h = mix64(
                            self.seed
                                ^ mix64(spread(k as u64) ^ mix64(event as u64 ^ STREAM_CROWD)),
                        );
                        // Box-Muller scatter around the anchor.
                        let u1 = unit(h).max(1e-12);
                        let u2 = unit(mix64(h ^ 1));
                        let r = crowd.spread_km * (-2.0 * u1.ln()).sqrt();
                        let theta = std::f64::consts::TAU * u2;
                        let p = (anchor.0 + r * theta.cos(), anchor.1 + r * theta.sin());
                        let (hub, d) = self.grid.nearest(p);
                        (hub as u32, self.pathloss(d))
                    })
                    .collect();
                (assoc, scale)
            })
            .collect()
    }

    /// Simulated population size.
    #[must_use]
    pub fn num_ues(&self) -> usize {
        self.config.num_ues
    }

    /// Hub count the demand aggregates onto.
    #[must_use]
    pub fn num_hubs(&self) -> usize {
        self.sites.len()
    }

    /// Horizon in slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    #[inline]
    fn pathloss(&self, d: f64) -> f64 {
        1.0 / (1.0 + (d / self.config.pathloss_ref_km).powf(self.config.pathloss_exponent))
    }

    /// Commute-wave multiplier: morning and evening Gaussian bumps.
    #[inline]
    fn commute_factor(&self, hour: usize) -> f64 {
        let bump = |peak: f64| {
            let z = (hour as f64 - peak) / 1.5;
            (-0.5 * z * z).exp()
        };
        1.0 + self.config.commute_amplitude * (bump(8.0) + bump(18.0))
    }

    /// Demand of one unit-activity UE at this hour (before the personal
    /// activity multiplier and pathloss weight).
    #[inline]
    fn base_demand(&self, hour: usize) -> f64 {
        let commute = self.commute_factor(hour);
        self.config.activity_floor + self.config.activity_swing * demand_shape(hour) * commute
    }

    /// Materialises the population as fixed-size shards, every UE's state
    /// derived from its global index alone.
    #[must_use]
    pub fn spawn_shards(&self) -> Vec<UeShard> {
        let num_ues = self.config.num_ues;
        let mut shards = Vec::with_capacity(num_ues.div_ceil(SHARD_UES));
        let mut base = 0usize;
        while base < num_ues {
            let len = SHARD_UES.min(num_ues - base);
            let mut shard = UeShard {
                base: base as u64,
                seg: Vec::with_capacity(len),
                t: Vec::with_capacity(len),
                dir: Vec::with_capacity(len),
                speed: Vec::with_capacity(len),
                jitter: Vec::with_capacity(len),
                activity: Vec::with_capacity(len),
                is_ev: Vec::with_capacity(len),
            };
            for ue in base..base + len {
                let h = mix64(self.seed ^ mix64(spread(ue as u64) ^ STREAM_INIT));
                let seg = self.roads.sample_segment(unit(h));
                let jitter = 0.75 + 0.5 * unit(mix64(h ^ 1));
                shard.seg.push(seg);
                shard.t.push(unit(mix64(h ^ 2)));
                shard
                    .dir
                    .push(if mix64(h ^ 3) & 1 == 0 { 1.0 } else { -1.0 });
                shard.jitter.push(jitter);
                shard
                    .speed
                    .push(self.roads.speed_kmh[seg as usize] * jitter);
                shard.activity.push(0.5 + unit(mix64(h ^ 4)));
                shard
                    .is_ev
                    .push(unit(mix64(h ^ 5)) < self.config.ev_fraction);
            }
            shards.push(shard);
            base += len;
        }
        shards
    }

    /// Advances one shard by one slot (mobility) and associates every UE
    /// to its nearest hub, returning the shard's pathloss-weighted partial
    /// load. Pure in `(shard state, slot)` — safe to fan out.
    #[must_use]
    pub fn step_shard(&self, shard: &mut UeShard, slot: usize) -> HubPartial {
        let hour = slot % SLOTS_PER_DAY;
        let commute = self.commute_factor(hour);
        let base_demand = self.base_demand(hour);
        let step_base = mix64(self.seed ^ mix64(slot as u64 ^ STREAM_STEP));
        let mut partial = HubPartial {
            load: vec![0.0; self.sites.len()],
            ev: vec![0.0; self.sites.len()],
            associations: shard.len() as u64,
        };
        for i in 0..shard.len() {
            let ue = shard.base + i as u64;
            let h = mix64(step_base ^ spread(ue));
            // Rewire: hop to a fresh length-weighted segment, keeping the
            // along-segment offset; speed follows the new segment's class.
            if unit(h) < self.config.rewire_chance {
                let seg = self.roads.sample_segment(unit(mix64(h ^ 1)));
                shard.seg[i] = seg;
                shard.speed[i] = self.roads.speed_kmh[seg as usize] * shard.jitter[i];
            }
            // Advance along the segment (one slot = one hour, so km/h is
            // km/slot), reflecting at the endpoints.
            let seg = shard.seg[i] as usize;
            let advance = shard.speed[i] * commute / self.roads.len_km[seg];
            let pos = (shard.t[i] + shard.dir[i] * advance).rem_euclid(2.0);
            if pos > 1.0 {
                shard.t[i] = 2.0 - pos;
                shard.dir[i] = -shard.dir[i];
            } else {
                shard.t[i] = pos;
            }
            // Associate and aggregate.
            let p = self.roads.point_at(shard.seg[i], shard.t[i]);
            let (hub, d) = self.grid.nearest(p);
            let w = self.pathloss(d);
            let demand = base_demand * shard.activity[i] * w;
            partial.load[hub] += demand;
            if shard.is_ev[i] {
                partial.ev[hub] += demand;
            }
        }
        partial
    }

    /// A zeroed accumulator sized for this engine's horizon.
    #[must_use]
    pub fn accumulator(&self) -> DemandAccumulator {
        DemandAccumulator {
            load: vec![vec![0.0; self.slots]; self.sites.len()],
            ev: vec![vec![0.0; self.slots]; self.sites.len()],
            associations: 0,
        }
    }

    /// Folds shard partials for one slot into the accumulator **in the
    /// order given** — callers must pass partials in shard order, which
    /// [`crate::synthesize_demand`] and the `ect-core` parallel driver
    /// both do, keeping the floating-point sums identical.
    pub fn fold(&self, slot: usize, partials: &[HubPartial], acc: &mut DemandAccumulator) {
        for partial in partials {
            for (hub, &load) in partial.load.iter().enumerate() {
                acc.load[hub][slot] += load;
            }
            for (hub, &ev) in partial.ev.iter().enumerate() {
                acc.ev[hub][slot] += ev;
            }
            acc.associations += partial.associations;
        }
    }

    /// Applies the flash-crowd surges and converts the raw weighted-load
    /// matrix into per-hub [`TrafficSample`] and EV-arrival series.
    #[must_use]
    pub fn finish(&self, mut acc: DemandAccumulator) -> MicrosimDemand {
        for (crowd, (assoc, scale)) in self.config.flash_crowds.iter().zip(&self.crowd_assoc) {
            for slot in crowd.start_slot..(crowd.start_slot + crowd.len_slots).min(self.slots) {
                let per_head = self.base_demand(slot % SLOTS_PER_DAY) * scale;
                for &(hub, w) in assoc {
                    acc.load[hub as usize][slot] += per_head * w;
                    acc.ev[hub as usize][slot] += self.config.ev_fraction * per_head * w;
                }
            }
        }
        let traffic = acc
            .load
            .iter()
            .map(|series| {
                series
                    .iter()
                    .map(|&raw| {
                        let load_rate = LoadRate::saturating(raw / self.config.ues_per_full_load);
                        TrafficSample {
                            load_rate,
                            volume_gb: load_rate.as_f64() * self.config.full_load_gb,
                        }
                    })
                    .collect()
            })
            .collect();
        MicrosimDemand {
            num_ues: self.config.num_ues,
            num_hubs: self.sites.len(),
            slots: self.slots,
            hub_sites: self.sites.clone(),
            traffic,
            ev_arrivals: acc.ev,
            total_associations: acc.associations,
        }
    }

    /// Runs the whole simulation on the calling thread — the sequential
    /// reference path. `ect_core::microsim::synthesize_demand_parallel`
    /// fans the same shard steps over the dispatch layer and is pinned
    /// bit-identical to this.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` keeps the
    /// signature aligned with the parallel driver.
    pub fn synthesize(&self) -> ect_types::Result<MicrosimDemand> {
        let started = std::time::Instant::now();
        let mut shards = self.spawn_shards();
        let mut acc = self.accumulator();
        let mut partials = Vec::with_capacity(shards.len());
        for slot in 0..self.slots {
            let _span = ect_obs::span("microsim.step");
            partials.clear();
            for shard in &mut shards {
                partials.push(self.step_shard(shard, slot));
            }
            self.fold(slot, &partials, &mut acc);
            ect_obs::counter_add("microsim.associations", self.config.num_ues as u64);
        }
        record_throughput(self.config.num_ues, self.slots, started.elapsed());
        Ok(self.finish(acc))
    }
}

/// Records the end-to-end UE-slots/sec of one synthesis into the shared
/// telemetry histogram (used by both the sequential and parallel drivers).
pub fn record_throughput(num_ues: usize, slots: usize, elapsed: std::time::Duration) {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        let rate = (num_ues as f64 * slots as f64 / secs) as u64;
        ect_obs::histogram_record("microsim.ue_slots_per_s", rate);
    }
}

/// One-call demand synthesis: builds the engine and runs it sequentially.
///
/// # Errors
///
/// Propagates [`MicrosimEngine::new`] validation failures.
pub fn synthesize_demand(
    config: &MicrosimConfig,
    region: &Region,
    num_hubs: usize,
    slots: usize,
    seed: u64,
) -> ect_types::Result<MicrosimDemand> {
    MicrosimEngine::new(config, region, num_hubs, slots, seed)?.synthesize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlashCrowd;
    use ect_data::spatial::RegionConfig;
    use ect_types::rng::EctRng;

    fn small_region(seed: u64) -> Region {
        Region::generate(
            &RegionConfig {
                size_km: 60.0,
                num_highways: 3,
                num_cities: 2,
                streets_per_city: 4,
                city_radius_km: 5.0,
                num_base_stations: 120,
                ..RegionConfig::default()
            },
            &mut EctRng::seed_from(seed),
        )
        .unwrap()
    }

    fn small_config() -> MicrosimConfig {
        MicrosimConfig {
            num_ues: 1_500,
            ..MicrosimConfig::default()
        }
    }

    #[test]
    fn hub_sites_follow_the_topology_stride() {
        let region = small_region(3);
        let sites = hub_sites(&region, 5).unwrap();
        let stride = region.base_stations.len() / 5;
        assert_eq!(sites.len(), 5);
        for (hub, &site) in sites.iter().enumerate() {
            assert_eq!(site, region.base_stations[hub * stride]);
        }
        assert!(hub_sites(&region, 0).is_err());
        assert!(hub_sites(&region, region.base_stations.len() + 1).is_err());
    }

    #[test]
    fn demand_has_the_requested_shape() {
        let region = small_region(11);
        let demand = synthesize_demand(&small_config(), &region, 4, 48, 9).unwrap();
        assert_eq!(demand.num_hubs, 4);
        assert_eq!(demand.slots, 48);
        assert_eq!(demand.traffic.len(), 4);
        assert!(demand.traffic.iter().all(|s| s.len() == 48));
        assert!(demand.ev_arrivals.iter().all(|s| s.len() == 48));
        assert_eq!(demand.total_associations, 1_500 * 48);
        assert!(demand.peak_load_rate() > 0.0);
        // Every sample stays a valid load rate with consistent volume.
        for series in &demand.traffic {
            for sample in series {
                let rate = sample.load_rate.as_f64();
                assert!((0.0..=1.0).contains(&rate));
                assert!((sample.volume_gb - rate * 160.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn same_inputs_are_bit_identical() {
        let region = small_region(21);
        let config = small_config();
        let a = synthesize_demand(&config, &region, 3, 24, 77).unwrap();
        let b = synthesize_demand(&config, &region, 3, 24, 77).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_and_config_move_the_output() {
        let region = small_region(21);
        let config = small_config();
        let base = synthesize_demand(&config, &region, 3, 24, 77).unwrap();
        let reseeded = synthesize_demand(&config, &region, 3, 24, 78).unwrap();
        assert_ne!(base, reseeded);
        let busier = synthesize_demand(
            &MicrosimConfig {
                num_ues: 3_000,
                ..config
            },
            &region,
            3,
            24,
            77,
        )
        .unwrap();
        assert!(busier.mean_load_rate() > base.mean_load_rate());
    }

    #[test]
    fn diurnal_pattern_shows_up() {
        // With enough UEs the evening peak (hour 20) must out-demand the
        // overnight trough (hour 4) on aggregate.
        let region = small_region(5);
        let demand = synthesize_demand(&small_config(), &region, 2, 24, 1).unwrap();
        let at = |hour: usize| -> f64 {
            demand
                .traffic
                .iter()
                .map(|s| s[hour].load_rate.as_f64())
                .sum()
        };
        assert!(at(20) > at(4), "evening {} <= night {}", at(20), at(4));
    }

    #[test]
    fn flash_crowd_lifts_the_window() {
        let region = small_region(13);
        let quiet = synthesize_demand(&small_config(), &region, 3, 48, 5).unwrap();
        let crowd_config = MicrosimConfig {
            flash_crowds: vec![FlashCrowd {
                start_slot: 20,
                len_slots: 6,
                population: 4_000,
                road: 1,
                spread_km: 1.5,
            }],
            ..small_config()
        };
        let surged = synthesize_demand(&crowd_config, &region, 3, 48, 5).unwrap();
        let total_at = |d: &MicrosimDemand, slot: usize| -> f64 {
            d.traffic.iter().map(|s| s[slot].load_rate.as_f64()).sum()
        };
        // Inside the window the surge adds load; outside it nothing moves.
        assert!(total_at(&surged, 22) > total_at(&quiet, 22));
        assert_eq!(total_at(&surged, 10), total_at(&quiet, 10));
        assert_eq!(total_at(&surged, 40), total_at(&quiet, 40));
    }

    #[test]
    fn demand_round_trips_through_json() {
        let region = small_region(31);
        let demand = synthesize_demand(
            &MicrosimConfig {
                num_ues: 400,
                ..MicrosimConfig::default()
            },
            &region,
            2,
            12,
            3,
        )
        .unwrap();
        let json = serde_json::to_string(&demand).unwrap();
        let back: MicrosimDemand = serde_json::from_str(&json).unwrap();
        assert_eq!(back, demand);
    }

    #[test]
    fn engine_rejects_degenerate_inputs() {
        let region = small_region(1);
        let config = small_config();
        assert!(MicrosimEngine::new(&config, &region, 0, 24, 1).is_err());
        assert!(MicrosimEngine::new(&config, &region, 2, 0, 1).is_err());
        let bare = Region {
            roads: Vec::new(),
            base_stations: region.base_stations.clone(),
            size_km: region.size_km,
        };
        assert!(MicrosimEngine::new(&config, &bare, 2, 24, 1).is_err());
    }
}
