//! Microsimulation configuration: population size, mobility, demand shape
//! and scripted surge events.

use serde::{Deserialize, Serialize};

/// One scripted flash crowd: a population surge pinned to a road-graph
/// location for a slot window (a stadium event, an incident, a festival).
///
/// The crowd is anchored at the midpoint of road segment
/// `road % region.roads.len()` and scattered around it with a Gaussian
/// spread of `spread_km`; its members demand like regular UEs (diurnal
/// shape × activity floor/swing) for the duration of the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// First slot of the surge.
    pub start_slot: usize,
    /// Window length in slots (must be ≥ 1).
    pub len_slots: usize,
    /// Number of surging UEs (must be ≥ 1).
    pub population: usize,
    /// Anchor road segment, taken modulo the region's segment count.
    pub road: usize,
    /// Gaussian scatter radius around the anchor, km.
    pub spread_km: f64,
}

impl FlashCrowd {
    /// `true` when the crowd is present at `slot`.
    #[must_use]
    pub fn active_at(&self, slot: usize) -> bool {
        slot >= self.start_slot && slot < self.start_slot + self.len_slots
    }
}

/// Knobs of the UE microsimulation.
///
/// Everything that shapes the synthesized demand lives here; together with
/// the region, hub count, slot count and seed it fully determines the
/// output (see the crate-level determinism contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicrosimConfig {
    /// Simulated population size.
    pub num_ues: usize,
    /// Mean cruising speed on highway segments, km/h.
    pub highway_speed_kmh: f64,
    /// Mean cruising speed on urban segments, km/h.
    pub urban_speed_kmh: f64,
    /// Per-slot chance a UE hops to a fresh (length-weighted) segment
    /// instead of continuing along its current one, in `[0, 1]`.
    pub rewire_chance: f64,
    /// Demand floor every active UE contributes regardless of hour.
    pub activity_floor: f64,
    /// Diurnal demand swing on top of the floor (scaled by the shared
    /// [`ect_data::rtp::demand_shape`] curve).
    pub activity_swing: f64,
    /// Strength of the morning/evening commute waves: a multiplier
    /// `1 + commute_amplitude · (bump(8h) + bump(18h))` on both movement
    /// and demand.
    pub commute_amplitude: f64,
    /// Fraction of UEs that are EVs (feed the EV-arrival series), `[0, 1]`.
    pub ev_fraction: f64,
    /// Pathloss distance exponent `α` in `w = 1 / (1 + (d/d₀)^α)`.
    pub pathloss_exponent: f64,
    /// Pathloss reference distance `d₀`, km.
    pub pathloss_ref_km: f64,
    /// Weighted UE-load units that saturate one hub (`load_rate = 1`).
    pub ues_per_full_load: f64,
    /// Traffic volume at full load, GB per slot (mirrors
    /// [`ect_data::traffic::TrafficConfig`]).
    pub full_load_gb: f64,
    /// Scripted population surges.
    pub flash_crowds: Vec<FlashCrowd>,
}

impl Default for MicrosimConfig {
    fn default() -> Self {
        Self {
            num_ues: 10_000,
            highway_speed_kmh: 80.0,
            urban_speed_kmh: 30.0,
            rewire_chance: 0.15,
            activity_floor: 0.05,
            activity_swing: 0.60,
            commute_amplitude: 0.80,
            ev_fraction: 0.20,
            pathloss_exponent: 2.5,
            pathloss_ref_km: 1.0,
            ues_per_full_load: 400.0,
            full_load_gb: 160.0,
            flash_crowds: Vec::new(),
        }
    }
}

fn positive_finite(v: f64, what: &str) -> ect_types::Result<()> {
    if !v.is_finite() || v <= 0.0 {
        return Err(ect_types::EctError::InvalidConfig(format!(
            "{what} must be positive and finite, got {v}"
        )));
    }
    Ok(())
}

fn fraction(v: f64, what: &str) -> ect_types::Result<()> {
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(ect_types::EctError::InvalidConfig(format!(
            "{what} must lie in [0, 1], got {v}"
        )));
    }
    Ok(())
}

impl MicrosimConfig {
    /// Checks every knob for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] naming the first
    /// offending field.
    pub fn validate(&self) -> ect_types::Result<()> {
        if self.num_ues == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "microsim needs at least one UE".into(),
            ));
        }
        positive_finite(self.highway_speed_kmh, "highway speed")?;
        positive_finite(self.urban_speed_kmh, "urban speed")?;
        fraction(self.rewire_chance, "rewire chance")?;
        fraction(self.ev_fraction, "EV fraction")?;
        for (v, what) in [
            (self.activity_floor, "activity floor"),
            (self.activity_swing, "activity swing"),
            (self.commute_amplitude, "commute amplitude"),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ect_types::EctError::InvalidConfig(format!(
                    "{what} must be non-negative and finite, got {v}"
                )));
            }
        }
        if self.activity_floor + self.activity_swing <= 0.0 {
            return Err(ect_types::EctError::InvalidConfig(
                "activity floor + swing must be positive (UEs would never demand)".into(),
            ));
        }
        positive_finite(self.pathloss_exponent, "pathloss exponent")?;
        positive_finite(self.pathloss_ref_km, "pathloss reference distance")?;
        positive_finite(self.ues_per_full_load, "UEs per full load")?;
        positive_finite(self.full_load_gb, "full-load volume")?;
        for (i, crowd) in self.flash_crowds.iter().enumerate() {
            if crowd.len_slots == 0 || crowd.population == 0 {
                return Err(ect_types::EctError::InvalidConfig(format!(
                    "flash crowd {i} needs a non-empty window and population"
                )));
            }
            if !crowd.spread_km.is_finite() || crowd.spread_km < 0.0 {
                return Err(ect_types::EctError::InvalidConfig(format!(
                    "flash crowd {i} spread must be non-negative and finite"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        MicrosimConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_knobs_are_rejected() {
        for broken in [
            MicrosimConfig {
                num_ues: 0,
                ..MicrosimConfig::default()
            },
            MicrosimConfig {
                highway_speed_kmh: 0.0,
                ..MicrosimConfig::default()
            },
            MicrosimConfig {
                rewire_chance: 1.5,
                ..MicrosimConfig::default()
            },
            MicrosimConfig {
                activity_floor: 0.0,
                activity_swing: 0.0,
                ..MicrosimConfig::default()
            },
            MicrosimConfig {
                pathloss_exponent: f64::NAN,
                ..MicrosimConfig::default()
            },
            MicrosimConfig {
                flash_crowds: vec![FlashCrowd {
                    start_slot: 0,
                    len_slots: 0,
                    population: 10,
                    road: 0,
                    spread_km: 1.0,
                }],
                ..MicrosimConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "accepted {broken:?}");
        }
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = MicrosimConfig {
            flash_crowds: vec![FlashCrowd {
                start_slot: 12,
                len_slots: 6,
                population: 5_000,
                road: 3,
                spread_km: 2.0,
            }],
            ..MicrosimConfig::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: MicrosimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn flash_crowd_window_membership() {
        let crowd = FlashCrowd {
            start_slot: 10,
            len_slots: 4,
            population: 100,
            road: 0,
            spread_km: 1.0,
        };
        assert!(!crowd.active_at(9));
        assert!(crowd.active_at(10));
        assert!(crowd.active_at(13));
        assert!(!crowd.active_at(14));
    }
}
