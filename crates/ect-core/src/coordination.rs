//! Networked multi-hub coordination: does a policy that *sees* the coupling
//! beat policies that don't?
//!
//! The coupling layer ([`ect_env::coupling`]) networks the hub fleet three
//! ways: a shared distribution feeder with an aggregate grid-import cap
//! (proportional-fairness curtailment), EV demand spillover to topology
//! neighbours, and a mutual-observation block exposing neighbour SoC, load
//! and curtailment pressure. [`run_coordination`] turns that machinery into
//! the repo's first *multi-agent* headline number:
//!
//! 1. **Independent arm** — one PPO policy per hub, trained on the
//!    *uncoupled* engine (each hub believes the feeder is infinite), then
//!    evaluated jointly, greedily, on the coupled fleet with the mutual
//!    block disabled so the observation shape still matches.
//! 2. **Coordinated arm** — one shared policy trained *under* the coupling
//!    with mutual observations on, then evaluated greedily on the same
//!    coupled fleet.
//!
//! Both arms are scored on identical evaluation seeds, so the
//! **coordination gap** — coordinated minus independent mean daily reward —
//! isolates what awareness of the network is worth when the feeder cap
//! binds. Under a binding cap the independent policies keep charging into
//! slots the feeder cannot serve (they never saw a curtailment penalty
//! during training); the coordinated policy learns to shed or shift that
//! demand, so the gap is positive.
//!
//! Everything is seeded and deterministic: the same config + options
//! reproduce the same gap bit for bit (pinned by
//! `tests/coupling_equivalence.rs` at the engine level and the smoke tests
//! here at the study level).

use crate::scheduling::OBS_WINDOW;
use crate::system::EctHubSystem;
use ect_data::scenario::ScenarioSpec;
use ect_data::spatial::{Region, RegionConfig};
use ect_data::topology::HubTopology;
use ect_drl::collector::train_fleet;
use ect_drl::generalist::{train_generalist, GeneralistConfig, ScenarioMixture};
use ect_drl::trainer::TrainerConfig;
use ect_drl::ActorCritic;
use ect_env::battery::BpAction;
use ect_env::coupling::{CouplingConfig, FeederConfig, SpilloverConfig};
use ect_env::fleet::fleet_env_for_hubs;
use ect_env::tariff::DiscountSchedule;
use ect_types::ids::HubId;
use ect_types::rng::EctRng;
use ect_types::units::DollarsPerKwh;
use ect_types::SLOTS_PER_DAY;
use serde::{Deserialize, Serialize};

/// Seed-stream separator for the per-hub independent trainers.
const INDEPENDENT_SEED_STREAM: u64 = 0xD15C_0BA1;

/// Seed-stream separator for the coordinated shared-policy trainer.
const COORDINATED_SEED_STREAM: u64 = 0xC002_D14A;

/// Seed-stream separator for the joint evaluation rollouts (shared by both
/// arms, so they face identical worlds and EV draws).
const COORDINATION_EVAL_STREAM: u64 = 0xE7A1_C002;

/// Seed-stream separator for the road-graph topology region (decorrelated
/// from the world and trainer draws).
const ROAD_TOPOLOGY_SEED_STREAM: u64 = 0x70D0_10D7;

/// Knobs of a road-graph-derived coupling topology: hubs are sited on the
/// evenly-strided base stations of a synthetic [`Region`] and linked to
/// their `k` nearest siblings ([`HubTopology::from_region`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadGraphTopology {
    /// Seed of the generated region (default [`RegionConfig`]).
    pub seed: u64,
    /// Nearest neighbours each hub links to (≥ 1; union-symmetrised).
    pub k: usize,
}

/// Where the coordination study's hub adjacency comes from.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum TopologySource {
    /// The historical ring over all hubs.
    #[default]
    Ring,
    /// Road-distance adjacency from a generated region's geography.
    RoadGraph(RoadGraphTopology),
}

impl TopologySource {
    /// Builds the hub adjacency this source describes.
    ///
    /// # Errors
    ///
    /// Propagates region generation and topology validation failures.
    pub fn build(&self, num_hubs: usize) -> ect_types::Result<HubTopology> {
        match self {
            Self::Ring => HubTopology::ring(num_hubs),
            Self::RoadGraph(road) => {
                let region = Region::generate(
                    &RegionConfig::default(),
                    &mut EctRng::seed_from(road.seed ^ ROAD_TOPOLOGY_SEED_STREAM),
                )?;
                HubTopology::from_region(&region, num_hubs, road.k)
            }
        }
    }
}

/// Knobs of the coordination study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinationOptions {
    /// Training episodes per arm (the per-hub independents and the shared
    /// coordinated policy get the same budget).
    pub episodes: usize,
    /// Joint greedy evaluation episodes per arm.
    pub eval_episodes: usize,
    /// Aggregate feeder import cap shared by the whole fleet, kW. Sized
    /// against `num_hubs` station rates so it binds whenever EVs charge.
    pub feeder_cap_kw: f64,
    /// Price charged per curtailed kWh, $/kWh.
    pub curtailment_price: f64,
    /// EV demand multiplier on even-indexed hubs (the saturated half of the
    /// ring; > 1 overflows the local station so spillover flows).
    pub demand_scale_high: f64,
    /// EV demand multiplier on odd-indexed hubs (the headroom half).
    pub demand_scale_low: f64,
    /// Where the hub adjacency comes from (ring, or road-graph geography).
    pub topology: TopologySource,
}

impl Default for CoordinationOptions {
    fn default() -> Self {
        Self {
            episodes: 16,
            eval_episodes: 4,
            feeder_cap_kw: 60.0,
            curtailment_price: 0.60,
            demand_scale_high: 1.8,
            demand_scale_low: 0.3,
            topology: TopologySource::Ring,
        }
    }
}

impl CoordinationOptions {
    /// Validates the study request.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for a zero episode
    /// budget, a non-positive/non-finite feeder cap or demand scale, or a
    /// negative/non-finite curtailment price.
    pub fn validate(&self) -> ect_types::Result<()> {
        if self.episodes == 0 || self.eval_episodes == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "coordination study needs at least one training and one evaluation episode".into(),
            ));
        }
        if !self.feeder_cap_kw.is_finite() || self.feeder_cap_kw <= 0.0 {
            return Err(ect_types::EctError::InvalidConfig(format!(
                "feeder cap must be finite and positive, got {}",
                self.feeder_cap_kw
            )));
        }
        if !self.curtailment_price.is_finite() || self.curtailment_price < 0.0 {
            return Err(ect_types::EctError::InvalidConfig(format!(
                "curtailment price must be finite and non-negative, got {}",
                self.curtailment_price
            )));
        }
        for (name, scale) in [
            ("high", self.demand_scale_high),
            ("low", self.demand_scale_low),
        ] {
            if !scale.is_finite() || scale <= 0.0 {
                return Err(ect_types::EctError::InvalidConfig(format!(
                    "{name} demand scale must be finite and positive, got {scale}"
                )));
            }
        }
        if let TopologySource::RoadGraph(road) = &self.topology {
            if road.k == 0 {
                return Err(ect_types::EctError::InvalidConfig(
                    "road-graph topology needs k ≥ 1 (k = 0 disconnects the fleet)".into(),
                ));
            }
        }
        Ok(())
    }

    /// The coupling this study runs under: the configured topology over
    /// every hub ([`TopologySource`]), the feeder cap and curtailment price
    /// from the options, and asymmetric EV demand (saturated even hubs,
    /// headroom odd hubs).
    ///
    /// # Errors
    ///
    /// Propagates topology construction and validation.
    pub fn coupling(&self, num_hubs: usize, mutual_obs: bool) -> ect_types::Result<CouplingConfig> {
        let mut ev_demand_scale = vec![self.demand_scale_low; num_hubs];
        for scale in ev_demand_scale.iter_mut().step_by(2) {
            *scale = self.demand_scale_high;
        }
        Ok(CouplingConfig {
            topology: self.topology.build(num_hubs)?,
            feeder: Some(FeederConfig {
                cap_kw: self.feeder_cap_kw,
                curtailment_price: DollarsPerKwh::new(self.curtailment_price),
            }),
            spillover: Some(SpilloverConfig { ev_demand_scale }),
            mutual_obs,
        })
    }
}

/// Joint-rollout scorecard of one arm on the coupled fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoordinationArm {
    /// Mean daily reward per hub across all evaluation rollouts.
    pub mean_daily_reward: f64,
    /// Fleet-total grid import the feeder refused, kWh.
    pub curtailed_kwh: f64,
    /// Fleet-total curtailment penalties paid, $.
    pub curtailment_penalty: f64,
    /// Curtailed share of requested import: `curtailed / (curtailed +
    /// served)`, in `[0, 1]`.
    pub curtailment_share: f64,
    /// Fleet-total EV demand absorbed from saturated neighbours, kWh.
    pub spillover_kwh: f64,
    /// Fleet-total grid import the feeder served, kWh.
    pub grid_import_kwh: f64,
}

/// The full coordination study (`results/coordination.json` payload plus
/// the trained shared policy, so the whole outcome spills to the persistent
/// artifact cache).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoordinationOutcome {
    /// Hubs on the ring.
    pub num_hubs: usize,
    /// Episode length, slots.
    pub horizon_slots: usize,
    /// The binding aggregate import cap, kW.
    pub feeder_cap_kw: f64,
    /// Training episodes per arm.
    pub train_episodes: usize,
    /// Joint evaluation episodes per arm.
    pub eval_episodes: usize,
    /// Observation width of the coordinated policy (includes the mutual
    /// block).
    pub coordinated_obs_dim: usize,
    /// Observation width of each independent policy.
    pub independent_obs_dim: usize,
    /// The coupling-aware shared policy's scorecard.
    pub coordinated: CoordinationArm,
    /// The coupling-blind per-hub policies' scorecard.
    pub independent: CoordinationArm,
    /// Headline: coordinated minus independent mean daily reward
    /// (positive = network awareness pays under the binding cap).
    pub coordination_gap: f64,
    /// The trained coordinated policy.
    pub policy: ActorCritic,
}

/// Greedy argmax over one lane's action probabilities.
fn greedy(probs: [f64; 3]) -> BpAction {
    let idx = (0..3)
        .max_by(|&a, &b| probs[a].total_cmp(&probs[b]))
        .expect("three actions");
    BpAction::from_index(idx)
}

/// Scores one arm with joint greedy rollouts on the coupled fleet.
///
/// `select` maps `(lane, lane observation)` to that lane's action; both
/// arms run the exact same seeds, worlds and initial SoCs, so their
/// scorecards differ only through the policies.
fn eval_joint(
    system: &EctHubSystem,
    coupling: &CouplingConfig,
    eval_episodes: usize,
    seed: u64,
    mut select: impl FnMut(usize, &[f64]) -> BpAction,
) -> ect_types::Result<CoordinationArm> {
    let world = system.world();
    let num_hubs = world.num_hubs() as usize;
    let horizon = world.horizon();
    let hubs: Vec<HubId> = (0..num_hubs as u32).map(HubId::new).collect();
    let discounts = vec![DiscountSchedule::none(horizon); num_hubs];
    let days_per_lane = horizon.div_ceil(SLOTS_PER_DAY).max(1);

    let mut total_reward = 0.0;
    let mut curtailed_kwh = 0.0;
    let mut curtailment_penalty = 0.0;
    let mut spillover_kwh = 0.0;
    let mut grid_import_kwh = 0.0;
    let mut actions = vec![BpAction::Idle; num_hubs];
    for episode in 0..eval_episodes {
        let mut rngs: Vec<EctRng> = (0..num_hubs as u64)
            .map(|lane| EctRng::seed_from(seed ^ (lane << 32) ^ ((episode as u64) << 8)))
            .collect();
        let mut fleet =
            fleet_env_for_hubs(world, &hubs, 0, horizon, &discounts, OBS_WINDOW, &mut rngs)?
                .with_coupling(coupling.clone())?;
        let mut soc_rng = EctRng::seed_from(seed ^ 0x50C ^ ((episode as u64) << 16));
        let initial_soc: Vec<f64> = (0..num_hubs).map(|_| soc_rng.uniform()).collect();
        fleet.reset(&initial_soc);
        let dim = fleet.state_dim();
        loop {
            let obs = fleet.obs().to_vec();
            for (lane, chunk) in obs.chunks_exact(dim).enumerate() {
                actions[lane] = select(lane, chunk);
            }
            let step = fleet.step_batch(&actions);
            total_reward += step.rewards.iter().sum::<f64>();
            for b in step.breakdowns {
                curtailed_kwh += b.curtailed_kwh;
                curtailment_penalty += b.curtailment_penalty.as_f64();
                spillover_kwh += b.spill_in.as_f64();
                grid_import_kwh += b.p_grid.as_f64();
            }
            if step.done {
                break;
            }
        }
    }
    let total_days = (eval_episodes * num_hubs * days_per_lane) as f64;
    let requested = curtailed_kwh + grid_import_kwh;
    Ok(CoordinationArm {
        mean_daily_reward: total_reward / total_days,
        curtailed_kwh,
        curtailment_penalty,
        curtailment_share: if requested > 0.0 {
            curtailed_kwh / requested
        } else {
            0.0
        },
        spillover_kwh,
        grid_import_kwh,
    })
}

/// Runs the coordination study directly on an assembled system.
///
/// Prefer [`Session::coordination`](crate::session::Session::coordination),
/// which memoises the trained arms (and spills them to the persistent
/// cache); this entry point is for callers that manage their own system —
/// the bench smoke tests and the session-equivalence pins.
///
/// # Errors
///
/// Propagates option validation, training and evaluation failures.
pub fn run_coordination(
    system: &EctHubSystem,
    options: &CoordinationOptions,
) -> ect_types::Result<CoordinationOutcome> {
    coordination_impl(system, options)
}

/// The coordination study engine behind
/// [`Session::coordination`](crate::session::Session::coordination) — see
/// the module docs for the full protocol.
pub(crate) fn coordination_impl(
    system: &EctHubSystem,
    options: &CoordinationOptions,
) -> ect_types::Result<CoordinationOutcome> {
    options.validate()?;
    let world = system.world();
    let num_hubs = world.num_hubs() as usize;
    let horizon = world.horizon();
    let hubs: Vec<HubId> = (0..num_hubs as u32).map(HubId::new).collect();
    let discounts = vec![DiscountSchedule::none(horizon); num_hubs];
    let base_seed = system.config().seed;
    let trainer_base = system.config().trainer.clone();

    // Independent arm: one policy per hub, trained on the *uncoupled*
    // engine — each hub optimises as if the feeder were infinite.
    let independent_configs: Vec<TrainerConfig> = (0..num_hubs)
        .map(|lane| TrainerConfig {
            episodes: options.episodes,
            seed: base_seed ^ ((lane as u64) << 32) ^ INDEPENDENT_SEED_STREAM,
            ..trainer_base.clone()
        })
        .collect();
    let independent_policies: Vec<ActorCritic> =
        train_fleet(&independent_configs, |_e: usize, rngs: &mut [EctRng]| {
            fleet_env_for_hubs(world, &hubs, 0, horizon, &discounts, OBS_WINDOW, rngs)
        })?
        .into_iter()
        .map(|(policy, _history)| policy)
        .collect();

    // Coordinated arm: one shared policy trained under the full coupling
    // with the mutual-observation block on.
    let coordinated_config = GeneralistConfig {
        trainer: TrainerConfig {
            episodes: options.episodes,
            seed: base_seed ^ COORDINATED_SEED_STREAM,
            ..trainer_base.clone()
        },
        lanes: num_hubs,
    };
    let train_coupling = options.coupling(num_hubs, true)?;
    let mixture = ScenarioMixture::uniform(vec![system.config().scenario.clone()])?;
    let (policy, _history) = train_generalist(
        &coordinated_config,
        &mixture,
        |_e: usize, _specs: &[&ScenarioSpec], rngs: &mut [EctRng]| {
            fleet_env_for_hubs(world, &hubs, 0, horizon, &discounts, OBS_WINDOW, rngs)
                .and_then(|fleet| fleet.with_coupling(train_coupling.clone()))
        },
    )?;

    // Joint evaluation: identical seeds for both arms; the independent arm
    // runs with the mutual block off so its observation shape matches the
    // uncoupled training observations.
    let eval_seed = base_seed ^ COORDINATION_EVAL_STREAM;
    let coordinated = eval_joint(
        system,
        &train_coupling,
        options.eval_episodes,
        eval_seed,
        |_lane, obs| greedy(policy.evaluate_one(obs).0),
    )?;
    let blind_coupling = options.coupling(num_hubs, false)?;
    let independent = eval_joint(
        system,
        &blind_coupling,
        options.eval_episodes,
        eval_seed,
        |lane, obs| greedy(independent_policies[lane].evaluate_one(obs).0),
    )?;

    Ok(CoordinationOutcome {
        num_hubs,
        horizon_slots: horizon,
        feeder_cap_kw: options.feeder_cap_kw,
        train_episodes: options.episodes,
        eval_episodes: options.eval_episodes,
        coordinated_obs_dim: policy.state_dim(),
        independent_obs_dim: independent_policies
            .first()
            .map(ActorCritic::state_dim)
            .unwrap_or(0),
        coordination_gap: coordinated.mean_daily_reward - independent.mean_daily_reward,
        coordinated,
        independent,
        policy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use ect_env::coupling::MUTUAL_OBS_DIM;

    fn tiny_system() -> EctHubSystem {
        let mut config = SystemConfig::miniature();
        config.world.num_hubs = 2;
        config.world.horizon_slots = 24 * 4;
        config.trainer.episodes = 2;
        config.test_episodes = 1;
        EctHubSystem::new(config).unwrap()
    }

    fn tiny_options() -> CoordinationOptions {
        CoordinationOptions {
            episodes: 2,
            eval_episodes: 1,
            ..CoordinationOptions::default()
        }
    }

    #[test]
    fn options_validation_rejects_bad_knobs() {
        let mut o = CoordinationOptions {
            episodes: 0,
            ..CoordinationOptions::default()
        };
        assert!(o.validate().is_err(), "zero training episodes");
        o.episodes = 2;
        o.eval_episodes = 0;
        assert!(o.validate().is_err(), "zero evaluation episodes");
        o.eval_episodes = 1;
        o.feeder_cap_kw = 0.0;
        assert!(o.validate().is_err(), "zero feeder cap");
        o.feeder_cap_kw = f64::NAN;
        assert!(o.validate().is_err(), "NaN feeder cap");
        o.feeder_cap_kw = 60.0;
        o.curtailment_price = -0.1;
        assert!(o.validate().is_err(), "negative curtailment price");
        o.curtailment_price = 0.6;
        o.demand_scale_high = 0.0;
        assert!(o.validate().is_err(), "zero demand scale");
        o.demand_scale_high = 1.8;
        o.validate().unwrap();
    }

    #[test]
    fn road_graph_topology_is_deterministic_and_valid() {
        let source = TopologySource::RoadGraph(RoadGraphTopology { seed: 7, k: 2 });
        let a = source.build(6).unwrap();
        let b = source.build(6).unwrap();
        assert_eq!(a.num_hubs(), 6);
        a.validate().unwrap();
        for hub in 0..6 {
            assert_eq!(a.neighbours(hub), b.neighbours(hub), "hub {hub} adjacency");
            assert!(!a.neighbours(hub).is_empty(), "k ≥ 1 keeps hub {hub} wired");
        }
        // A different region seed is allowed to (and here does) rewire hubs.
        let other = TopologySource::RoadGraph(RoadGraphTopology { seed: 8, k: 2 })
            .build(6)
            .unwrap();
        assert!(
            (0..6).any(|hub| a.neighbours(hub) != other.neighbours(hub)),
            "the topology must come from the region, not from the hub count"
        );
    }

    #[test]
    fn road_graph_degenerates_to_the_ring_on_two_hubs() {
        // The smoke-scale study runs 2 hubs; geography cannot change that
        // adjacency (a single mutual edge), so swapping the source in the
        // bench preset leaves the small pins untouched.
        let road = TopologySource::RoadGraph(RoadGraphTopology { seed: 3, k: 2 })
            .build(2)
            .unwrap();
        let ring = HubTopology::ring(2).unwrap();
        assert_eq!(road.neighbours(0), ring.neighbours(0));
        assert_eq!(road.neighbours(1), ring.neighbours(1));
        assert_eq!(road.edge_count(), ring.edge_count());
    }

    #[test]
    fn road_graph_options_validate_and_round_trip() {
        let options = CoordinationOptions {
            topology: TopologySource::RoadGraph(RoadGraphTopology { seed: 11, k: 0 }),
            ..tiny_options()
        };
        assert!(options.validate().is_err(), "k = 0 disconnects the fleet");

        let options = CoordinationOptions {
            topology: TopologySource::RoadGraph(RoadGraphTopology { seed: 11, k: 2 }),
            ..tiny_options()
        };
        options.validate().unwrap();
        let json = serde_json::to_string(&options).unwrap();
        let back: CoordinationOptions = serde_json::from_str(&json).unwrap();
        assert_eq!(back, options, "artifact keys hash the topology source");
        let coupling = options.coupling(4, true).unwrap();
        assert_eq!(coupling.topology.num_hubs(), 4);
        coupling.topology.validate().unwrap();
    }

    #[test]
    fn coupling_builder_alternates_demand_scales() {
        let options = CoordinationOptions::default();
        let coupling = options.coupling(4, true).unwrap();
        let spill = coupling.spillover.expect("spillover configured");
        assert_eq!(
            spill.ev_demand_scale,
            vec![
                options.demand_scale_high,
                options.demand_scale_low,
                options.demand_scale_high,
                options.demand_scale_low,
            ]
        );
        assert!(coupling.mutual_obs);
        assert_eq!(coupling.topology.num_hubs(), 4);
        assert!(!options.coupling(4, false).unwrap().mutual_obs);
    }

    #[test]
    fn coordination_study_produces_consistent_scorecards() {
        let system = tiny_system();
        let options = tiny_options();
        let outcome = coordination_impl(&system, &options).unwrap();

        assert_eq!(outcome.num_hubs, 2);
        assert_eq!(outcome.train_episodes, options.episodes);
        assert_eq!(
            outcome.coordinated_obs_dim,
            outcome.independent_obs_dim + MUTUAL_OBS_DIM,
            "the coordinated policy sees the mutual block"
        );
        assert_eq!(outcome.policy.state_dim(), outcome.coordinated_obs_dim);
        for arm in [&outcome.coordinated, &outcome.independent] {
            assert!(arm.mean_daily_reward.is_finite());
            assert!(arm.curtailed_kwh >= 0.0);
            assert!(arm.grid_import_kwh > 0.0, "the fleet imported something");
            assert!((0.0..=1.0).contains(&arm.curtailment_share));
        }
        assert!(
            outcome.independent.curtailed_kwh > 0.0,
            "the cap must bind on the coupling-blind arm"
        );
        assert_eq!(
            outcome.coordination_gap,
            outcome.coordinated.mean_daily_reward - outcome.independent.mean_daily_reward
        );

        // Serialises for results/coordination.json and the disk cache.
        let json = serde_json::to_string(&outcome).unwrap();
        let back: CoordinationOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.coordination_gap.to_bits(),
            outcome.coordination_gap.to_bits()
        );

        // Determinism: the same system + options reproduce the same gap.
        let again = coordination_impl(&system, &options).unwrap();
        assert_eq!(
            again.coordination_gap.to_bits(),
            outcome.coordination_gap.to_bits()
        );
    }
}
