//! Scheduling stage: per-hub DRL training under each pricing method, with
//! parallel fleet execution (Fig. 13 / Table III of the paper).

use crate::system::EctHubSystem;
use ect_drl::heuristics::{DrlScheduler, Scheduler};
use ect_drl::trainer::{evaluate, train, EvalSummary, TrainerConfig, TrainingHistory};
use ect_env::fleet::env_for_hub;
use ect_env::tariff::DiscountSchedule;
use ect_price::engine::{discount_levels, PricingEngine};
use ect_types::ids::{HubId, StationId};
use ect_types::rng::EctRng;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Observation window of the Eq. 24 state (one day of history).
pub const OBS_WINDOW: usize = 24;

/// Result of one (hub, pricing-method) experiment cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HubExperimentResult {
    /// Hub evaluated.
    pub hub: u32,
    /// Pricing method that produced the discount schedule.
    pub method: String,
    /// Average daily reward over the test episodes — Table III's metric.
    pub avg_daily_reward: f64,
    /// Mean reward per episode day, averaged across test episodes — the
    /// Fig. 13 series.
    pub daily_series: Vec<f64>,
    /// Mean training return over the last 10 % of episodes.
    pub final_training_return: f64,
}

/// Builds the per-hub discount schedule a pricing engine induces.
///
/// # Errors
///
/// Propagates schedule validation failures.
pub fn schedule_for_hub(
    system: &EctHubSystem,
    engine: &dyn PricingEngine,
    hub: HubId,
) -> ect_types::Result<DiscountSchedule> {
    let space = system.feature_space();
    let levels = discount_levels(
        engine,
        &space,
        StationId::new(hub.as_u32()),
        0,
        system.world().horizon(),
        system.config().discount,
    );
    DiscountSchedule::from_levels(levels)
}

/// Trains and evaluates ECT-DRL on one hub under one pricing engine.
///
/// Episodes replay the hub's fixed exogenous traces (the paper: "all the
/// other inputs … remain the same for the four models") while the charging
/// strata are redrawn per episode and the initial SoC is randomised.
///
/// # Errors
///
/// Propagates environment and training failures.
pub fn run_hub_method(
    system: &EctHubSystem,
    hub: HubId,
    engine: &dyn PricingEngine,
    method_label: &str,
) -> ect_types::Result<HubExperimentResult> {
    let discounts = schedule_for_hub(system, engine, hub)?;
    let horizon = system.world().horizon();
    let world = system.world();

    let factory = |_episode: usize, rng: &mut EctRng| {
        env_for_hub(world, hub, 0, horizon, discounts.clone(), OBS_WINDOW, rng)
    };

    // All methods share the hub's seed so their episodes are *paired*
    // (the paper: "all the other inputs … remain the same for the four
    // models"); reward differences then isolate discount-schedule quality.
    let trainer_config = TrainerConfig {
        seed: system.config().seed ^ (u64::from(hub.as_u32()) << 32),
        ..system.config().trainer.clone()
    };
    let (policy, history) = train(&trainer_config, factory)?;

    let mut scheduler = DrlScheduler::new(policy);
    let summary = evaluate(
        &mut scheduler,
        factory,
        system.config().test_episodes,
        trainer_config.seed ^ EVAL_SEED_STREAM,
    )?;

    Ok(assemble_result(hub, method_label, &history, &summary))
}

/// Evaluates a rule-based scheduler on one hub (ablation comparator); no
/// training involved.
///
/// # Errors
///
/// Propagates environment failures.
pub fn run_hub_scheduler<S: Scheduler + ?Sized>(
    system: &EctHubSystem,
    hub: HubId,
    engine: &dyn PricingEngine,
    scheduler: &mut S,
) -> ect_types::Result<HubExperimentResult> {
    let discounts = schedule_for_hub(system, engine, hub)?;
    let horizon = system.world().horizon();
    let world = system.world();
    let factory = |_episode: usize, rng: &mut EctRng| {
        env_for_hub(world, hub, 0, horizon, discounts.clone(), OBS_WINDOW, rng)
    };
    let summary = evaluate(
        scheduler,
        factory,
        system.config().test_episodes,
        system.config().seed ^ u64::from(hub.as_u32()),
    )?;
    let mut result = assemble_result(hub, scheduler.name(), &TrainingHistory::default(), &summary);
    result.final_training_return = f64::NAN; // no training happened
    Ok(result)
}

fn assemble_result(
    hub: HubId,
    method: &str,
    history: &TrainingHistory,
    summary: &EvalSummary,
) -> HubExperimentResult {
    // Average the per-day series across episodes (episodes share length).
    let days = summary
        .daily_rewards
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0);
    let mut daily_series = vec![0.0; days];
    for episode in &summary.daily_rewards {
        for (d, &r) in episode.iter().enumerate() {
            daily_series[d] += r;
        }
    }
    let episodes = summary.daily_rewards.len().max(1) as f64;
    for v in &mut daily_series {
        *v /= episodes;
    }
    let final_training_return = if history.episode_returns.is_empty() {
        f64::NAN
    } else {
        history.recent_mean((history.episode_returns.len() / 10).max(1))
    };
    HubExperimentResult {
        hub: hub.as_u32(),
        method: method.to_string(),
        avg_daily_reward: summary.avg_daily_reward,
        daily_series,
        final_training_return,
    }
}

/// Seed-stream separator so evaluation draws never overlap training draws.
const EVAL_SEED_STREAM: u64 = 0xE7A1_5EED;

/// Runs the full fleet: every hub × every named engine, in parallel.
///
/// `threads` caps the worker count (0 = one worker per job).
///
/// # Errors
///
/// Returns the first job error encountered, if any.
pub fn run_fleet(
    system: &EctHubSystem,
    engines: &[(String, Box<dyn PricingEngine>)],
    threads: usize,
) -> ect_types::Result<Vec<HubExperimentResult>> {
    let jobs: Vec<(HubId, usize)> = (0..system.world().num_hubs())
        .flat_map(|h| (0..engines.len()).map(move |e| (HubId::new(h), e)))
        .collect();
    let results = Mutex::new(Vec::with_capacity(jobs.len()));
    let errors: Mutex<Vec<ect_types::EctError>> = Mutex::new(Vec::new());
    let workers = if threads == 0 {
        jobs.len().max(1)
    } else {
        threads.min(jobs.len()).max(1)
    };

    crossbeam::thread::scope(|scope| {
        for chunk in jobs.chunks(jobs.len().div_ceil(workers)) {
            let results = &results;
            let errors = &errors;
            scope.spawn(move |_| {
                for &(hub, engine_idx) in chunk {
                    let (label, engine) = &engines[engine_idx];
                    match run_hub_method(system, hub, engine.as_ref(), label) {
                        Ok(r) => results.lock().push(r),
                        Err(e) => errors.lock().push(e),
                    }
                }
            });
        }
    })
    .expect("fleet worker panicked");

    let errors = errors.into_inner();
    if let Some(e) = errors.into_iter().next() {
        return Err(e);
    }
    let mut results = results.into_inner();
    results.sort_by(|a, b| (a.hub, &a.method).cmp(&(b.hub, &b.method)));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use ect_drl::heuristics::NoBattery;
    use ect_price::engine::{AlwaysDiscount, NeverDiscount};

    fn system() -> EctHubSystem {
        EctHubSystem::new(SystemConfig::miniature()).unwrap()
    }

    #[test]
    fn schedules_differ_between_engines() {
        let s = system();
        let none = schedule_for_hub(&s, &NeverDiscount, HubId::new(0)).unwrap();
        let all = schedule_for_hub(&s, &AlwaysDiscount, HubId::new(0)).unwrap();
        assert_eq!(none.discounted_count(), 0);
        assert_eq!(all.discounted_count(), all.len());
    }

    #[test]
    fn hub_method_runs_end_to_end() {
        let s = system();
        let r = run_hub_method(&s, HubId::new(0), &NeverDiscount, "NoDiscount").unwrap();
        assert_eq!(r.hub, 0);
        assert_eq!(r.method, "NoDiscount");
        assert_eq!(r.daily_series.len(), 30);
        assert!(r.avg_daily_reward.is_finite());
        assert!(r.final_training_return.is_finite());
    }

    #[test]
    fn heuristic_evaluation_runs() {
        let s = system();
        let r = run_hub_scheduler(&s, HubId::new(1), &NeverDiscount, &mut NoBattery).unwrap();
        assert_eq!(r.method, "NoBattery");
        assert!(r.avg_daily_reward.is_finite());
        assert!(r.final_training_return.is_nan());
    }

    #[test]
    fn fleet_covers_all_cells_in_parallel() {
        let s = system();
        let engines: Vec<(String, Box<dyn PricingEngine>)> = vec![
            ("NoDiscount".into(), Box::new(NeverDiscount)),
            ("AlwaysDiscount".into(), Box::new(AlwaysDiscount)),
        ];
        let results = run_fleet(&s, &engines, 4).unwrap();
        assert_eq!(results.len(), 3 * 2);
        // Sorted by (hub, method).
        assert!(results.windows(2).all(|w| (w[0].hub, &w[0].method) <= (w[1].hub, &w[1].method)));
    }

    #[test]
    fn discounts_increase_revenue_capture() {
        // With everything else equal, an AlwaysDiscount schedule converts the
        // Incentive strata, so the evaluated reward should not be lower than
        // the never-discount schedule on average (discount margin 0.8 × extra
        // conversions outweighs the subsidy at c = 0.2 in this world).
        let s = system();
        let mut no_sched = NoBattery;
        let base =
            run_hub_scheduler(&s, HubId::new(0), &NeverDiscount, &mut no_sched).unwrap();
        let promo =
            run_hub_scheduler(&s, HubId::new(0), &AlwaysDiscount, &mut no_sched).unwrap();
        assert!(
            promo.avg_daily_reward > base.avg_daily_reward * 0.8,
            "promo {} vs base {}",
            promo.avg_daily_reward,
            base.avg_daily_reward
        );
    }
}
