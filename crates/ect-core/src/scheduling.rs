//! Scheduling stage: per-hub DRL training under each pricing method, with
//! parallel fleet execution (Fig. 13 / Table III of the paper).
//!
//! Two execution engines produce identical results:
//!
//! * [`run_hub_method`] — one `(hub, method)` cell at a time over the
//!   sequential [`ect_env::env::HubEnv`];
//! * [`run_hubs_method_batched`] / [`run_fleet`] — hub *batches* stepped in
//!   lockstep through the [`ect_env::vec_env::FleetEnv`] engine, with the
//!   `(method, hub-chunk)` jobs dispatched over the work-stealing
//!   [`crate::dispatch`] pool so no worker idles behind a straggler chunk.
//!
//! The batched path is bit-identical to the sequential one under the same
//! system seed — lane RNG streams are isolated exactly as the per-hub
//! streams are (pinned by `tests/batched_equivalence.rs`).

use crate::system::EctHubSystem;
use ect_drl::collector::{evaluate_fleet_greedy, train_fleet};
use ect_drl::heuristics::{DrlScheduler, Scheduler};
use ect_drl::trainer::{evaluate, train, EvalSummary, TrainerConfig, TrainingHistory};
use ect_drl::ActorCritic;
use ect_env::fleet::{env_for_hub, fleet_env_for_hubs};
use ect_env::tariff::DiscountSchedule;
use ect_price::engine::{discount_levels, PricingEngine};
use ect_types::ids::{HubId, StationId};
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// Observation window of the Eq. 24 state (one day of history).
pub const OBS_WINDOW: usize = 24;

/// Result of one (hub, pricing-method) experiment cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HubExperimentResult {
    /// Hub evaluated.
    pub hub: u32,
    /// Pricing method that produced the discount schedule.
    pub method: String,
    /// Average daily reward over the test episodes — Table III's metric.
    pub avg_daily_reward: f64,
    /// Mean reward per episode day, averaged across test episodes — the
    /// Fig. 13 series.
    pub daily_series: Vec<f64>,
    /// Mean training return over the last 10 % of episodes.
    pub final_training_return: f64,
}

/// Builds the per-hub discount schedule a pricing engine induces.
///
/// # Errors
///
/// Propagates schedule validation failures.
pub fn schedule_for_hub(
    system: &EctHubSystem,
    engine: &dyn PricingEngine,
    hub: HubId,
) -> ect_types::Result<DiscountSchedule> {
    let space = system.feature_space();
    let levels = discount_levels(
        engine,
        &space,
        StationId::new(hub.as_u32()),
        0,
        system.world().horizon(),
        system.config().discount,
    );
    DiscountSchedule::from_levels(levels)
}

/// Trains and evaluates ECT-DRL on one hub under one pricing engine.
///
/// Episodes replay the hub's fixed exogenous traces (the paper: "all the
/// other inputs … remain the same for the four models") while the charging
/// strata are redrawn per episode and the initial SoC is randomised.
///
/// # Errors
///
/// Propagates environment and training failures.
pub fn run_hub_method(
    system: &EctHubSystem,
    hub: HubId,
    engine: &dyn PricingEngine,
    method_label: &str,
) -> ect_types::Result<HubExperimentResult> {
    let discounts = schedule_for_hub(system, engine, hub)?;
    let horizon = system.world().horizon();
    let world = system.world();

    let factory = |_episode: usize, rng: &mut EctRng| {
        env_for_hub(world, hub, 0, horizon, discounts.clone(), OBS_WINDOW, rng)
    };

    // All methods share the hub's seed so their episodes are *paired*
    // (the paper: "all the other inputs … remain the same for the four
    // models"); reward differences then isolate discount-schedule quality.
    let trainer_config = TrainerConfig {
        seed: hub_seed(system, hub),
        ..system.config().trainer.clone()
    };
    let (policy, history) = train(&trainer_config, factory)?;

    let mut scheduler = DrlScheduler::new(policy);
    let summary = evaluate(
        &mut scheduler,
        factory,
        system.config().test_episodes,
        trainer_config.seed ^ EVAL_SEED_STREAM,
    )?;

    Ok(assemble_result(hub, method_label, &history, &summary))
}

/// Evaluates a rule-based scheduler on one hub (ablation comparator); no
/// training involved.
///
/// # Errors
///
/// Propagates environment failures.
pub fn run_hub_scheduler<S: Scheduler + ?Sized>(
    system: &EctHubSystem,
    hub: HubId,
    engine: &dyn PricingEngine,
    scheduler: &mut S,
) -> ect_types::Result<HubExperimentResult> {
    let discounts = schedule_for_hub(system, engine, hub)?;
    let horizon = system.world().horizon();
    let world = system.world();
    let factory = |_episode: usize, rng: &mut EctRng| {
        env_for_hub(world, hub, 0, horizon, discounts.clone(), OBS_WINDOW, rng)
    };
    let summary = evaluate(
        scheduler,
        factory,
        system.config().test_episodes,
        system.config().seed ^ u64::from(hub.as_u32()),
    )?;
    let mut result = assemble_result(hub, scheduler.name(), &TrainingHistory::default(), &summary);
    result.final_training_return = f64::NAN; // no training happened
    Ok(result)
}

fn assemble_result(
    hub: HubId,
    method: &str,
    history: &TrainingHistory,
    summary: &EvalSummary,
) -> HubExperimentResult {
    // Average the per-day series across episodes (episodes share length).
    let days = summary
        .daily_rewards
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0);
    let mut daily_series = vec![0.0; days];
    for episode in &summary.daily_rewards {
        for (d, &r) in episode.iter().enumerate() {
            daily_series[d] += r;
        }
    }
    let episodes = summary.daily_rewards.len().max(1) as f64;
    for v in &mut daily_series {
        *v /= episodes;
    }
    let final_training_return = if history.episode_returns.is_empty() {
        f64::NAN
    } else {
        history.recent_mean((history.episode_returns.len() / 10).max(1))
    };
    HubExperimentResult {
        hub: hub.as_u32(),
        method: method.to_string(),
        avg_daily_reward: summary.avg_daily_reward,
        daily_series,
        final_training_return,
    }
}

/// Seed-stream separator so evaluation draws never overlap training draws.
const EVAL_SEED_STREAM: u64 = 0xE7A1_5EED;

/// The lane seed of one hub: every pricing method shares it, so episodes
/// stay *paired* across methods, and the batched engine reproduces the
/// sequential per-hub streams exactly.
fn hub_seed(system: &EctHubSystem, hub: HubId) -> u64 {
    system.config().seed ^ (u64::from(hub.as_u32()) << 32)
}

/// Trains and evaluates ECT-DRL on a *batch* of hubs under one pricing
/// engine, stepping all of them in lockstep through the
/// [`ect_env::vec_env::FleetEnv`] engine.
///
/// One lane per hub: lane `i` keeps its own policy, PPO state and RNG
/// stream seeded exactly as [`run_hub_method`] seeds hub `i`, so the
/// returned cells are bit-identical to calling [`run_hub_method`] per hub —
/// while the exogenous series are shared (`Arc`) and the env stepping is
/// amortised over the batch.
///
/// # Errors
///
/// Propagates schedule, environment and training failures.
pub fn run_hubs_method_batched(
    system: &EctHubSystem,
    hubs: &[HubId],
    engine: &dyn PricingEngine,
    method_label: &str,
) -> ect_types::Result<Vec<HubExperimentResult>> {
    if hubs.is_empty() {
        return Ok(Vec::new());
    }
    let world = system.world();
    let horizon = world.horizon();
    let discounts: Vec<DiscountSchedule> = hubs
        .iter()
        .map(|&hub| schedule_for_hub(system, engine, hub))
        .collect::<ect_types::Result<_>>()?;
    let configs: Vec<TrainerConfig> = hubs
        .iter()
        .map(|&hub| TrainerConfig {
            seed: hub_seed(system, hub),
            ..system.config().trainer.clone()
        })
        .collect();

    let factory = |_episode: usize, rngs: &mut [EctRng]| {
        fleet_env_for_hubs(world, hubs, 0, horizon, &discounts, OBS_WINDOW, rngs)
    };

    let trained = train_fleet(&configs, factory)?;
    let policies: Vec<ActorCritic> = trained.iter().map(|(policy, _)| policy.clone()).collect();
    let eval_seeds: Vec<u64> = configs.iter().map(|c| c.seed ^ EVAL_SEED_STREAM).collect();
    let summaries = evaluate_fleet_greedy(
        &policies,
        factory,
        system.config().test_episodes,
        &eval_seeds,
    )?;

    Ok(hubs
        .iter()
        .zip(trained.iter().zip(&summaries))
        .map(|(&hub, ((_, history), summary))| assemble_result(hub, method_label, history, summary))
        .collect())
}

/// Runs the full fleet: every hub × every named engine.
///
/// Execution rides the batched engine: the `hub × method` grid is split
/// into per-method hub chunks, each job trains its chunk as one lockstep
/// [`ect_env::vec_env::FleetEnv`] batch; jobs flow through the
/// work-stealing [`crate::dispatch`] pool. Results are bit-identical to
/// running [`run_hub_method`] per cell.
///
/// `threads` caps the worker count (0 = one worker per chunk).
///
/// # Errors
///
/// Returns the first job error encountered, if any.
#[deprecated(
    since = "0.2.0",
    note = "route through the unified experiment API: `Session::fleet` \
            (crate::session) shares the assembled system via the artifact store"
)]
pub fn run_fleet(
    system: &EctHubSystem,
    engines: &[(String, Box<dyn PricingEngine>)],
    threads: usize,
) -> ect_types::Result<Vec<HubExperimentResult>> {
    run_fleet_impl(system, engines, threads)
}

/// The batched fleet engine behind [`run_fleet`] and
/// [`Session::fleet`](crate::session::Session::fleet).
pub(crate) fn run_fleet_impl(
    system: &EctHubSystem,
    engines: &[(String, Box<dyn PricingEngine>)],
    threads: usize,
) -> ect_types::Result<Vec<HubExperimentResult>> {
    let num_hubs = system.world().num_hubs();
    let hubs: Vec<HubId> = (0..num_hubs).map(HubId::new).collect();
    let cells = (num_hubs as usize) * engines.len();
    if cells == 0 {
        return Ok(Vec::new());
    }
    let workers = if threads == 0 {
        cells
    } else {
        threads.min(cells).max(1)
    };

    // Split each method's hub list into enough chunks to keep `workers`
    // busy; each (method, hub-chunk) job is one batched fleet training.
    let chunks_per_engine = workers.div_ceil(engines.len()).clamp(1, num_hubs as usize);
    let chunk_len = (num_hubs as usize).div_ceil(chunks_per_engine);
    let jobs: Vec<(usize, &[HubId])> = (0..engines.len())
        .flat_map(|e| hubs.chunks(chunk_len).map(move |chunk| (e, chunk)))
        .collect();

    // Work-stealing keeps all `workers` busy even when chunks train at
    // uneven speeds; each job's result lands in its own slab slot, so the
    // output is deterministic regardless of which worker ran what.
    let per_job = crate::dispatch::run_indexed(jobs, workers, |_, (engine_idx, hub_chunk)| {
        let (label, engine) = &engines[engine_idx];
        run_hubs_method_batched(system, hub_chunk, engine.as_ref(), label)
    })?;

    let mut results: Vec<HubExperimentResult> = per_job.into_iter().flatten().collect();
    results.sort_by(|a, b| (a.hub, &a.method).cmp(&(b.hub, &b.method)));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use ect_drl::heuristics::NoBattery;
    use ect_price::engine::{AlwaysDiscount, NeverDiscount};

    fn system() -> EctHubSystem {
        EctHubSystem::new(SystemConfig::miniature()).unwrap()
    }

    #[test]
    fn schedules_differ_between_engines() {
        let s = system();
        let none = schedule_for_hub(&s, &NeverDiscount, HubId::new(0)).unwrap();
        let all = schedule_for_hub(&s, &AlwaysDiscount, HubId::new(0)).unwrap();
        assert_eq!(none.discounted_count(), 0);
        assert_eq!(all.discounted_count(), all.len());
    }

    #[test]
    fn hub_method_runs_end_to_end() {
        let s = system();
        let r = run_hub_method(&s, HubId::new(0), &NeverDiscount, "NoDiscount").unwrap();
        assert_eq!(r.hub, 0);
        assert_eq!(r.method, "NoDiscount");
        assert_eq!(r.daily_series.len(), 30);
        assert!(r.avg_daily_reward.is_finite());
        assert!(r.final_training_return.is_finite());
    }

    #[test]
    fn heuristic_evaluation_runs() {
        let s = system();
        let r = run_hub_scheduler(&s, HubId::new(1), &NeverDiscount, &mut NoBattery).unwrap();
        assert_eq!(r.method, "NoBattery");
        assert!(r.avg_daily_reward.is_finite());
        assert!(r.final_training_return.is_nan());
    }

    #[test]
    #[allow(deprecated)] // the legacy shim must stay green
    fn fleet_covers_all_cells_in_parallel() {
        let s = system();
        let engines: Vec<(String, Box<dyn PricingEngine>)> = vec![
            ("NoDiscount".into(), Box::new(NeverDiscount)),
            ("AlwaysDiscount".into(), Box::new(AlwaysDiscount)),
        ];
        let results = run_fleet(&s, &engines, 4).unwrap();
        assert_eq!(results.len(), 3 * 2);
        // Sorted by (hub, method).
        assert!(results
            .windows(2)
            .all(|w| (w[0].hub, &w[0].method) <= (w[1].hub, &w[1].method)));
    }

    #[test]
    fn batched_fleet_cells_match_sequential_cells() {
        let s = system();
        let hubs: Vec<HubId> = (0..3).map(HubId::new).collect();
        let batched = run_hubs_method_batched(&s, &hubs, &NeverDiscount, "NoDiscount").unwrap();
        assert_eq!(batched.len(), 3);
        for (cell, &hub) in batched.iter().zip(&hubs) {
            let seq = run_hub_method(&s, hub, &NeverDiscount, "NoDiscount").unwrap();
            assert_eq!(cell.hub, seq.hub);
            assert_eq!(
                cell.avg_daily_reward.to_bits(),
                seq.avg_daily_reward.to_bits(),
                "hub {hub} avg daily reward"
            );
            assert_eq!(
                cell.final_training_return.to_bits(),
                seq.final_training_return.to_bits()
            );
            assert_eq!(cell.daily_series.len(), seq.daily_series.len());
            for (a, b) in cell.daily_series.iter().zip(&seq.daily_series) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    #[allow(deprecated)] // the legacy shim must stay green
    fn run_fleet_matches_per_cell_results_regardless_of_chunking() {
        let s = system();
        let engines: Vec<(String, Box<dyn PricingEngine>)> =
            vec![("NoDiscount".into(), Box::new(NeverDiscount))];
        let wide = run_fleet(&s, &engines, 0).unwrap(); // one worker per chunk
        let narrow = run_fleet(&s, &engines, 1).unwrap(); // single worker
        assert_eq!(wide.len(), narrow.len());
        for (a, b) in wide.iter().zip(&narrow) {
            assert_eq!(a.hub, b.hub);
            assert_eq!(a.avg_daily_reward.to_bits(), b.avg_daily_reward.to_bits());
        }
    }

    #[test]
    #[allow(deprecated)] // the legacy shim must stay green
    fn work_stealing_fleet_is_bit_identical_across_thread_counts() {
        // The work-stealing pool hands jobs to whichever worker is free, so
        // execution order varies run to run — the slab-indexed results must
        // not. Pin bitwise identity against the single-worker inline path.
        let s = system();
        let engines: Vec<(String, Box<dyn PricingEngine>)> =
            vec![("NoDiscount".into(), Box::new(NeverDiscount))];
        let reference = run_fleet(&s, &engines, 1).unwrap();
        for threads in [2, 3, 5] {
            let stolen = run_fleet(&s, &engines, threads).unwrap();
            assert_eq!(stolen.len(), reference.len(), "threads {threads}");
            for (a, b) in stolen.iter().zip(&reference) {
                assert_eq!(a.hub, b.hub);
                assert_eq!(a.method, b.method);
                assert_eq!(
                    a.avg_daily_reward.to_bits(),
                    b.avg_daily_reward.to_bits(),
                    "hub {} threads {threads}",
                    a.hub
                );
                assert_eq!(
                    a.final_training_return.to_bits(),
                    b.final_training_return.to_bits()
                );
                for (x, y) in a.daily_series.iter().zip(&b.daily_series) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn discounts_increase_revenue_capture() {
        // With everything else equal, an AlwaysDiscount schedule converts the
        // Incentive strata, so the evaluated reward should not be lower than
        // the never-discount schedule on average (discount margin 0.8 × extra
        // conversions outweighs the subsidy at c = 0.2 in this world).
        let s = system();
        let mut no_sched = NoBattery;
        let base = run_hub_scheduler(&s, HubId::new(0), &NeverDiscount, &mut no_sched).unwrap();
        let promo = run_hub_scheduler(&s, HubId::new(0), &AlwaysDiscount, &mut no_sched).unwrap();
        assert!(
            promo.avg_daily_reward > base.avg_daily_reward * 0.8,
            "promo {} vs base {}",
            promo.avg_daily_reward,
            base.avg_daily_reward
        );
    }
}
