//! The parallel driver and session face of the UE microsimulation.
//!
//! `ect-microsim` owns the particle engine and its pure shard-step kernel;
//! this module fans the per-slot association step over the work-stealing
//! [`crate::dispatch::run_indexed`] dispatch and packages the synthesis as
//! a memoisable session artifact ([`MicrosimDemandOptions`] →
//! [`Session::microsim_demand_for`](crate::Session::microsim_demand_for)).
//!
//! Shards are a fixed partition of the population
//! ([`ect_microsim::SHARD_UES`]) and their partials fold in shard order,
//! so [`synthesize_demand_parallel`] is **bit-identical** to the
//! sequential [`ect_microsim::synthesize_demand`] at every thread count —
//! pinned by `tests/microsim_determinism.rs`.

use ect_data::spatial::{Region, RegionConfig};
use ect_microsim::{MicrosimConfig, MicrosimDemand, MicrosimEngine};
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// Seed-stream separator for the region generated under
/// [`MicrosimDemandOptions`] (decorrelated from the UE draws, which
/// consume the seed directly).
const MICROSIM_REGION_SEED_STREAM: u64 = 0x0E60_9AFD;

/// Everything a memoised demand synthesis depends on — this struct **is**
/// the artifact key payload, so it must stay pure: same options, same
/// demand, bit for bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicrosimDemandOptions {
    /// Population and behaviour knobs.
    pub microsim: MicrosimConfig,
    /// The synthetic region the UEs move in (generated from `seed`).
    pub region: RegionConfig,
    /// Hubs to aggregate demand onto.
    pub num_hubs: usize,
    /// Horizon in slots.
    pub slots: usize,
    /// Master seed for region generation and every UE draw.
    pub seed: u64,
}

impl MicrosimDemandOptions {
    /// Generates the region and synthesizes the demand, fanning shards
    /// over `threads` workers.
    ///
    /// # Errors
    ///
    /// Propagates region-generation and engine-validation failures.
    pub fn build(&self, threads: usize) -> ect_types::Result<MicrosimDemand> {
        let region = Region::generate(
            &self.region,
            &mut EctRng::seed_from(self.seed ^ MICROSIM_REGION_SEED_STREAM),
        )?;
        let engine = MicrosimEngine::new(
            &self.microsim,
            &region,
            self.num_hubs,
            self.slots,
            self.seed,
        )?;
        synthesize_demand_parallel(&engine, threads)
    }
}

/// Runs the engine with the per-slot association step fanned over
/// [`crate::dispatch::run_indexed`]: each shard is one job, stepped and
/// associated in parallel, partials folded back in shard order. Output is
/// bit-identical to [`MicrosimEngine::synthesize`] for every `threads`.
///
/// # Errors
///
/// Propagates dispatch failures (the shard kernel itself is infallible).
pub fn synthesize_demand_parallel(
    engine: &MicrosimEngine,
    threads: usize,
) -> ect_types::Result<MicrosimDemand> {
    let started = std::time::Instant::now();
    let mut shards = engine.spawn_shards();
    let mut acc = engine.accumulator();
    let workers = if threads == 0 { shards.len() } else { threads };
    for slot in 0..engine.slots() {
        let _span = ect_obs::span("microsim.step");
        let stepped =
            crate::dispatch::run_indexed(std::mem::take(&mut shards), workers, |_, mut shard| {
                let partial = engine.step_shard(&mut shard, slot);
                Ok((shard, partial))
            })?;
        let mut partials = Vec::with_capacity(stepped.len());
        shards = stepped
            .into_iter()
            .map(|(shard, partial)| {
                partials.push(partial);
                shard
            })
            .collect();
        engine.fold(slot, &partials, &mut acc);
        ect_obs::counter_add("microsim.associations", engine.num_ues() as u64);
    }
    ect_microsim::record_throughput(engine.num_ues(), engine.slots(), started.elapsed());
    Ok(engine.finish(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> MicrosimDemandOptions {
        MicrosimDemandOptions {
            microsim: MicrosimConfig {
                num_ues: 2_000,
                ..MicrosimConfig::default()
            },
            region: RegionConfig {
                size_km: 80.0,
                num_highways: 4,
                num_cities: 2,
                streets_per_city: 4,
                city_radius_km: 6.0,
                num_base_stations: 300,
                ..RegionConfig::default()
            },
            num_hubs: 4,
            slots: 24,
            seed: 11,
        }
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let opts = options();
        let region = Region::generate(
            &opts.region,
            &mut EctRng::seed_from(opts.seed ^ MICROSIM_REGION_SEED_STREAM),
        )
        .unwrap();
        let engine = MicrosimEngine::new(
            &opts.microsim,
            &region,
            opts.num_hubs,
            opts.slots,
            opts.seed,
        )
        .unwrap();
        let sequential = engine.synthesize().unwrap();
        for threads in [1, 2, 3, 8] {
            let parallel = synthesize_demand_parallel(&engine, threads).unwrap();
            assert_eq!(parallel, sequential, "diverged at {threads} threads");
        }
    }

    #[test]
    fn options_build_is_pure() {
        let opts = options();
        let a = opts.build(2).unwrap();
        let b = opts.build(7).unwrap();
        assert_eq!(a, b);
    }
}
