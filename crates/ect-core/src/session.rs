//! The operator session: one configured handle over the whole pipeline.
//!
//! A [`Session`] is the unified entry point the paper's "base-station-centric
//! hub controller" surface calls for: built once through a
//! [`SessionBuilder`] (base configuration, experiment scale, parallelism,
//! progress sink, optional persistent cache), it owns an [`ArtifactStore`]
//! that memoises every expensive intermediate — generated worlds, assembled
//! systems, held-out baselines, trained generalists, severity sweeps,
//! pricing tables — keyed by a content hash of their inputs. Experiments
//! that used to re-train from scratch (`generalization` and
//! `severity_sweep` both training generalists; every pricing figure
//! re-fitting ECT-Price) share work automatically when they run inside one
//! session.
//!
//! The store is internally synchronised, so every session method takes
//! `&self` — experiments can run concurrently over one shared session (the
//! bench registry's dependency-aware scheduler does exactly that), with
//! same-key requests serialising on the store's per-key slots so each
//! artifact is built exactly once.
//!
//! With [`SessionBuilder::persistent_cache`] the expensive, serialisable
//! artifact kinds (held-out baselines, generalists, severity sweeps,
//! pricing tables) additionally spill to a content-addressed disk cache, so
//! repeated *processes* skip retraining: lookups resolve memory → disk →
//! build, and any unreadable or version-mismatched disk entry is a miss,
//! never an error.
//!
//! All memoisation is safe by the workspace determinism contract: every
//! artifact is a pure function of its serialised inputs, so a cache hit —
//! in-memory or deserialised from disk — is bit-identical to a
//! recomputation (pinned by the `tests/session_equivalence.rs` and
//! `tests/cache_persistence.rs` suites).
//!
//! ```
//! use ect_core::prelude::*;
//!
//! let session = SessionBuilder::new(SystemConfig::miniature()).build()?;
//! let system = session.system()?; // generates the world once …
//! let again = session.system()?; // … and serves it from the store
//! assert!(std::sync::Arc::ptr_eq(&system, &again));
//! assert_eq!(session.store().kind_stats("system").builds, 1);
//! # Ok::<(), ect_types::EctError>(())
//! ```

use crate::artifact::{ArtifactKey, ArtifactStore};
use crate::cache::{CacheProvenance, DiskCache};
use crate::coordination::{coordination_impl, CoordinationOptions, CoordinationOutcome};
use crate::generalist::{
    heldout_baselines, run_generalist_against, GeneralistOptions, GeneralistOutcome,
    HeldOutBaseline,
};
use crate::microsim::MicrosimDemandOptions;
use crate::pricing::{pricing_table_impl, PricingTable};
use crate::scenario_grid::{scenario_grid_impl, NamedEngines, ScenarioGridResult};
use crate::scheduling::{run_fleet_impl, HubExperimentResult};
use crate::severity::{severity_sweep_impl, SeverityOptions, SeverityOutcome};
use crate::system::{EctHubSystem, SystemConfig};
use ect_data::dataset::{WorldConfig, WorldDataset};
use ect_data::scenario::ScenarioSpec;
use ect_price::engine::PricingEngine;
use ect_types::rng::EctRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Seed-stream separator of [`Session::pricing_table`] (decorrelated from
/// the per-figure streams of the bench harness).
const PRICING_TABLE_SEED_STREAM: u64 = 0x7AB1_E002;

/// Per-kind **code versions**, folded into every session artifact key via
/// [`ArtifactKey::versioned`]. Bump a constant whenever the corresponding
/// builder's *algorithm* changes (not just its inputs): every memoised and
/// persisted artifact of that kind becomes a miss, so a stale artifact
/// built by older code can never be served to newer code.
pub mod kind_versions {
    /// `world` — world generation.
    pub const WORLD: u32 = 1;
    /// `system` — system assembly on top of a generated world.
    pub const SYSTEM: u32 = 1;
    /// `heldout-baselines` — specialist + heuristic scoring.
    pub const HELDOUT_BASELINES: u32 = 1;
    /// `generalist` — scenario-mixture generalist training (bumped when
    /// the overlapped trainer changed the update schedule).
    pub const GENERALIST: u32 = 2;
    /// `severity` — domain-randomised severity sweep (rides on the same
    /// trainer as the generalist).
    pub const SEVERITY: u32 = 2;
    /// `pricing-table` — Table II pricing-engine training.
    pub const PRICING_TABLE: u32 = 1;
    /// `coordination` — networked multi-hub coordination study (trains the
    /// coordinated and independent arms under the coupling layer).
    pub const COORDINATION: u32 = 1;
    /// `microsim-demand` — UE microsimulation demand synthesis (bump when
    /// the particle engine's draws, mobility or aggregation change).
    pub const MICROSIM: u32 = 1;
}

/// Budget preset of an experiment run.
///
/// Experiments translate the scale into their own configurations; the
/// shared CLI of the bench layer maps `--smoke` / (default) / `--full`
/// onto the three presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunScale {
    /// CI-sized: small worlds, a handful of episodes, seconds per
    /// experiment.
    Smoke,
    /// Laptop-scale defaults (seconds to minutes per experiment).
    Quick,
    /// The paper's budgets (500 training episodes, 2-year histories, …).
    Paper,
}

impl RunScale {
    /// Display label (`smoke` / `quick` / `paper`).
    pub fn label(self) -> &'static str {
        match self {
            RunScale::Smoke => "smoke",
            RunScale::Quick => "quick",
            RunScale::Paper => "paper",
        }
    }
}

impl std::fmt::Display for RunScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Where a session reports coarse progress ("training the generalist …").
/// `Sync` because scheduler threads report through one shared session.
pub type ProgressSink = Box<dyn Fn(&str) + Send + Sync>;

/// Configures and builds a [`Session`].
pub struct SessionBuilder {
    config: SystemConfig,
    scale: RunScale,
    threads: Option<usize>,
    progress: Option<ProgressSink>,
    label: String,
    cache_dir: Option<PathBuf>,
    cache_budget: Option<u64>,
}

impl SessionBuilder {
    /// A builder over the given base system configuration.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            config,
            scale: RunScale::Quick,
            threads: None,
            progress: None,
            label: "session".to_string(),
            cache_dir: None,
            cache_budget: None,
        }
    }

    /// Replaces the base configuration's exogenous scenario — the session's
    /// world source.
    #[must_use]
    pub fn scenario(mut self, spec: ScenarioSpec) -> Self {
        self.config.scenario = spec;
        self
    }

    /// Sets the experiment scale ([`RunScale::Quick`] by default).
    #[must_use]
    pub fn scale(mut self, scale: RunScale) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the master seed of the base configuration.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Worker threads for fan-out stages. Defaults to
    /// [`Session::default_threads`] (the machine's available parallelism);
    /// an explicit value wins, and `0` keeps its one-worker-per-job
    /// semantics.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Labels the session for cache provenance (which run produced a disk
    /// entry). Defaults to `"session"`; [`SessionBuilder::stderr_progress`]
    /// also adopts its tag as the label.
    #[must_use]
    pub fn label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Attaches a persistent content-addressed disk cache rooted at `dir`:
    /// expensive serialisable artifacts (held-out baselines, generalists,
    /// severity sweeps, pricing tables, the bench layer's pricing models)
    /// spill to disk and are served back across processes. Without this
    /// the session memoises in memory only.
    #[must_use]
    pub fn persistent_cache<P: AsRef<Path>>(mut self, dir: P) -> Self {
        self.cache_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Byte budget of the persistent cache (least-recently-used entries are
    /// evicted past it). Defaults to [`DiskCache::DEFAULT_BUDGET_BYTES`].
    #[must_use]
    pub fn cache_budget_bytes(mut self, budget: u64) -> Self {
        self.cache_budget = Some(budget);
        self
    }

    /// Attaches a progress sink; without one the session is silent.
    #[must_use]
    pub fn progress(mut self, sink: ProgressSink) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Convenience: report progress to standard error, prefixed with the
    /// given tag (the harness binaries use their experiment id; the tag
    /// also becomes the session's provenance label).
    #[must_use]
    pub fn stderr_progress(self, tag: &str) -> Self {
        let prefix = format!("[{tag}]");
        self.label(tag)
            .progress(Box::new(move |msg| eprintln!("{prefix} {msg}")))
    }

    /// Validates the base configuration and builds the session. No world is
    /// generated yet — artifacts materialise on first use.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemConfig::validate`] failures.
    pub fn build(self) -> ect_types::Result<Session> {
        self.config.validate()?;
        let store = match self.cache_dir {
            Some(dir) => {
                let disk = match self.cache_budget {
                    Some(budget) => DiskCache::with_budget(&dir, budget),
                    None => DiskCache::new(&dir),
                };
                let provenance = CacheProvenance {
                    experiment: self.label.clone(),
                    seed: self.config.seed,
                    scale: self.scale.label().to_string(),
                };
                ArtifactStore::with_disk(disk, provenance)
            }
            None => ArtifactStore::new(),
        };
        Ok(Session {
            config: self.config,
            scale: self.scale,
            threads: self.threads.unwrap_or_else(Session::default_threads),
            progress: self.progress,
            label: self.label,
            store,
        })
    }
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("scale", &self.scale)
            .field("threads", &self.threads)
            .field("progress", &self.progress.is_some())
            .field("cache_dir", &self.cache_dir)
            .finish_non_exhaustive()
    }
}

/// A configured handle over the pipeline, owning the artifact store.
///
/// Methods come in pairs: `*_for` takes an explicit [`SystemConfig`] (the
/// bench experiments each bring their own scale-derived configuration),
/// while the short names use the session's base configuration. Both routes
/// share one store, so any two calls with identical inputs share one
/// computation — including calls racing on scheduler threads, which
/// serialise per key inside the store.
pub struct Session {
    config: SystemConfig,
    scale: RunScale,
    threads: usize,
    progress: Option<ProgressSink>,
    label: String,
    store: ArtifactStore,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("scale", &self.scale)
            .field("threads", &self.threads)
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Starts a builder over the given base configuration.
    pub fn builder(config: SystemConfig) -> SessionBuilder {
        SessionBuilder::new(config)
    }

    /// The default worker-thread budget: the machine's available
    /// parallelism (1 when it cannot be determined).
    pub fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The session's base configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The experiment scale the session was built for.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// Worker threads for fan-out stages (0 = one worker per job).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The artifact store. Internally synchronised: downstream layers
    /// memoise their own artifact types (e.g. the bench registry's pricing
    /// model) through the same shared reference.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Root of the persistent artifact cache, when one is attached.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.store.disk().map(DiskCache::root)
    }

    /// The session's label (cache provenance and telemetry attribution).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Reports coarse progress: always mirrored as a `progress` telemetry
    /// event (when a registry is installed), then handed to the configured
    /// sink — under the process-wide print lock, so progress lines from
    /// experiments running on parallel scheduler threads never interleave.
    pub fn report(&self, message: &str) {
        ect_obs::progress(&self.label, message);
        if let Some(sink) = &self.progress {
            let _serialized = ect_obs::print_lock();
            sink(message);
        }
    }

    fn announce_build(&self, key: &ArtifactKey, message: &str) {
        if !self.store.available_without_build(key) {
            self.report(message);
        }
    }

    // ------------------------------------------------------------------
    // Memoised artifacts
    // ------------------------------------------------------------------

    /// The generated world of `(world configuration, scenario)`, memoised.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn world_for(
        &self,
        world: &WorldConfig,
        spec: &ScenarioSpec,
    ) -> ect_types::Result<Arc<WorldDataset>> {
        let key = ArtifactKey::versioned("world", kind_versions::WORLD, &(world, spec));
        self.store
            .get_or_insert(key, || WorldDataset::generate_scenario(world.clone(), spec))
    }

    /// The world of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn world(&self) -> ect_types::Result<Arc<WorldDataset>> {
        self.world_for(&self.config.world, &self.config.scenario)
    }

    /// The assembled system of an explicit configuration, memoised. The
    /// underlying world flows through the world memo, so a system and a
    /// bare world request for the same `(world config, scenario)` share one
    /// generation.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn system_for(&self, config: &SystemConfig) -> ect_types::Result<Arc<EctHubSystem>> {
        let key = ArtifactKey::versioned("system", kind_versions::SYSTEM, config);
        let world = self.world_for(&config.world, &config.scenario)?;
        self.store
            .get_or_insert(key, || EctHubSystem::from_parts(config.clone(), world))
    }

    /// The system of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn system(&self) -> ect_types::Result<Arc<EctHubSystem>> {
        self.system_for(&self.config)
    }

    /// The held-out baselines (per-scenario specialists + rule-based
    /// schedulers) of an explicit configuration, memoised — the expensive,
    /// generalist-independent half of a generalisation study. Spills to
    /// the persistent cache when one is attached.
    ///
    /// # Errors
    ///
    /// Propagates world-generation, training and evaluation failures.
    pub fn heldout_baselines_for(
        &self,
        config: &SystemConfig,
    ) -> ect_types::Result<Arc<Vec<HeldOutBaseline>>> {
        let key = ArtifactKey::versioned(
            "heldout-baselines",
            kind_versions::HELDOUT_BASELINES,
            config,
        );
        self.announce_build(&key, "scoring held-out specialists and heuristics …");
        let system = self.system_for(config)?;
        let threads = self.threads;
        self.store
            .get_or_insert_cached(key, || heldout_baselines(&system, threads))
    }

    /// Held-out baselines of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates world-generation, training and evaluation failures.
    pub fn heldout_baselines(&self) -> ect_types::Result<Arc<Vec<HeldOutBaseline>>> {
        self.heldout_baselines_for(&self.config)
    }

    /// The scenario-mixture generalist of `(configuration, options)`,
    /// memoised: trained once, scored against the (memoised) held-out
    /// baselines. Any experiment requesting the same pair reuses the
    /// trained policy — the work-sharing path behind the combined
    /// `generalization` + `severity_sweep` acceptance probe. Spills to the
    /// persistent cache when one is attached.
    ///
    /// # Errors
    ///
    /// Propagates training and evaluation failures.
    pub fn generalist_for(
        &self,
        config: &SystemConfig,
        options: &GeneralistOptions,
    ) -> ect_types::Result<Arc<GeneralistOutcome>> {
        let key =
            ArtifactKey::versioned("generalist", kind_versions::GENERALIST, &(config, options));
        let baselines = self.heldout_baselines_for(config)?;
        let system = self.system_for(config)?;
        self.announce_build(&key, "training the scenario-mixture generalist …");
        self.store
            .get_or_insert_cached(key, || run_generalist_against(&system, options, &baselines))
    }

    /// The generalist of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates training and evaluation failures.
    pub fn generalist(
        &self,
        options: &GeneralistOptions,
    ) -> ect_types::Result<Arc<GeneralistOutcome>> {
        self.generalist_for(&self.config, options)
    }

    /// The severity sweep of `(configuration, options)`, memoised: one
    /// domain-randomised generalist trained per distinct pair, its per-axis
    /// robustness curves served from the store afterwards. Spills to the
    /// persistent cache when one is attached.
    ///
    /// # Errors
    ///
    /// Propagates option validation, training and evaluation failures.
    pub fn severity_for(
        &self,
        config: &SystemConfig,
        options: &SeverityOptions,
    ) -> ect_types::Result<Arc<SeverityOutcome>> {
        let key = ArtifactKey::versioned("severity", kind_versions::SEVERITY, &(config, options));
        self.announce_build(&key, "training the domain-randomised generalist …");
        let system = self.system_for(config)?;
        self.store
            .get_or_insert_cached(key, || severity_sweep_impl(&system, options))
    }

    /// The severity sweep of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates option validation, training and evaluation failures.
    pub fn severity_sweep(
        &self,
        options: &SeverityOptions,
    ) -> ect_types::Result<Arc<SeverityOutcome>> {
        self.severity_for(&self.config, options)
    }

    /// The coordination study of `(configuration, options)`, memoised: the
    /// coupling-aware shared policy and the coupling-blind per-hub
    /// policies are trained once per distinct pair, their joint scorecards
    /// served from the store afterwards. Spills to the persistent cache
    /// when one is attached.
    ///
    /// # Errors
    ///
    /// Propagates option validation, training and evaluation failures.
    pub fn coordination_for(
        &self,
        config: &SystemConfig,
        options: &CoordinationOptions,
    ) -> ect_types::Result<Arc<CoordinationOutcome>> {
        let key = ArtifactKey::versioned(
            "coordination",
            kind_versions::COORDINATION,
            &(config, options),
        );
        self.announce_build(&key, "training coordinated vs independent hub policies …");
        let system = self.system_for(config)?;
        self.store
            .get_or_insert_cached(key, || coordination_impl(&system, options))
    }

    /// The coordination study of the session's base configuration,
    /// memoised.
    ///
    /// # Errors
    ///
    /// Propagates option validation, training and evaluation failures.
    pub fn coordination(
        &self,
        options: &CoordinationOptions,
    ) -> ect_types::Result<Arc<CoordinationOutcome>> {
        self.coordination_for(&self.config, options)
    }

    /// The UE-microsimulation demand of `options`, memoised: the particle
    /// engine runs once per distinct option set (shards fanned over the
    /// session's thread pool — the output is thread-count invariant, so
    /// parallelism never leaks into the artifact), and the synthesized
    /// per-hub series are served from the store afterwards. Spills to the
    /// persistent cache when one is attached.
    ///
    /// # Errors
    ///
    /// Propagates region-generation and microsim validation failures.
    pub fn microsim_demand_for(
        &self,
        options: &MicrosimDemandOptions,
    ) -> ect_types::Result<Arc<ect_microsim::MicrosimDemand>> {
        let key = ArtifactKey::versioned("microsim-demand", kind_versions::MICROSIM, options);
        self.announce_build(&key, "synthesizing UE microsim demand …");
        self.store
            .get_or_insert_cached(key, || options.build(self.threads))
    }

    /// The Table II pricing table of `(configuration, discount levels)`,
    /// memoised: the paper set of pricing engines is trained once per
    /// distinct pair (seed stream decorrelated from the bench harness's
    /// figure streams). Spills to the persistent cache when one is
    /// attached.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn pricing_table_for(
        &self,
        config: &SystemConfig,
        discounts: &[f64],
    ) -> ect_types::Result<Arc<PricingTable>> {
        let key = ArtifactKey::versioned(
            "pricing-table",
            kind_versions::PRICING_TABLE,
            &(config, discounts),
        );
        self.announce_build(&key, "training the paper's pricing engines …");
        let system = self.system_for(config)?;
        self.store.get_or_insert_cached(key, || {
            let (train, test) = system.pricing_datasets();
            let mut rng = EctRng::seed_from(system.config().seed ^ PRICING_TABLE_SEED_STREAM);
            pricing_table_impl(&system, &train, &test, discounts, &mut rng)
        })
    }

    /// The pricing table of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn pricing_table(&self, discounts: &[f64]) -> ect_types::Result<Arc<PricingTable>> {
        self.pricing_table_for(&self.config, discounts)
    }

    // ------------------------------------------------------------------
    // Fan-out stages (pass-through: pricing engines are opaque trait
    // objects, not content-addressable inputs)
    // ------------------------------------------------------------------

    /// Runs the full hub × engine fleet of an explicit configuration on the
    /// batched engine, using the session's worker-thread budget.
    ///
    /// # Errors
    ///
    /// Returns the first job error encountered, if any.
    pub fn fleet_for(
        &self,
        config: &SystemConfig,
        engines: &[(String, Box<dyn PricingEngine>)],
    ) -> ect_types::Result<Vec<HubExperimentResult>> {
        let system = self.system_for(config)?;
        run_fleet_impl(&system, engines, self.threads)
    }

    /// Runs the fleet of the session's base configuration.
    ///
    /// # Errors
    ///
    /// Returns the first job error encountered, if any.
    pub fn fleet(
        &self,
        engines: &[(String, Box<dyn PricingEngine>)],
    ) -> ect_types::Result<Vec<HubExperimentResult>> {
        self.fleet_for(&self.config, engines)
    }

    /// Runs the scenario × method grid of an explicit configuration over
    /// the batched fleet workers, using the session's thread budget.
    ///
    /// # Errors
    ///
    /// Propagates world-generation, training and evaluation failures.
    pub fn scenario_grid_for(
        &self,
        config: &SystemConfig,
        scenarios: &[ScenarioSpec],
        engines_for: &(dyn Fn(&EctHubSystem) -> ect_types::Result<NamedEngines> + Sync),
    ) -> ect_types::Result<Vec<ScenarioGridResult>> {
        let system = self.system_for(config)?;
        scenario_grid_impl(&system, scenarios, engines_for, self.threads)
    }

    /// Runs the scenario grid of the session's base configuration.
    ///
    /// # Errors
    ///
    /// Propagates world-generation, training and evaluation failures.
    pub fn scenario_grid(
        &self,
        scenarios: &[ScenarioSpec],
        engines_for: &(dyn Fn(&EctHubSystem) -> ect_types::Result<NamedEngines> + Sync),
    ) -> ect_types::Result<Vec<ScenarioGridResult>> {
        self.scenario_grid_for(&self.config, scenarios, engines_for)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ect_price::engine::NeverDiscount;

    fn tiny_config() -> SystemConfig {
        let mut config = SystemConfig::miniature();
        config.world.num_hubs = 2;
        config.world.horizon_slots = 24 * 4;
        config.trainer.episodes = 2;
        config.test_episodes = 1;
        config
    }

    #[test]
    fn builder_validates_and_carries_knobs() {
        let session = SessionBuilder::new(SystemConfig::miniature())
            .scale(RunScale::Smoke)
            .threads(2)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(session.scale(), RunScale::Smoke);
        assert_eq!(session.threads(), 2);
        assert_eq!(session.config().seed, 99);
        assert_eq!(RunScale::Smoke.to_string(), "smoke");
        assert_eq!(RunScale::Paper.label(), "paper");
        assert!(session.cache_dir().is_none(), "no cache unless requested");

        let mut bad = SystemConfig::miniature();
        bad.discount = 0.0;
        assert!(SessionBuilder::new(bad).build().is_err());
    }

    #[test]
    fn threads_default_to_available_parallelism() {
        let session = SessionBuilder::new(SystemConfig::miniature())
            .build()
            .unwrap();
        assert_eq!(session.threads(), Session::default_threads());
        assert!(Session::default_threads() >= 1);
        // An explicit 0 keeps its one-worker-per-job semantics.
        let explicit = SessionBuilder::new(SystemConfig::miniature())
            .threads(0)
            .build()
            .unwrap();
        assert_eq!(explicit.threads(), 0);
    }

    #[test]
    fn scenario_knob_replaces_the_world_source() {
        use ect_data::scenario::scenario_by_name;
        let config = SystemConfig::miniature();
        let storm = scenario_by_name("winter-storm", config.world.horizon_slots).unwrap();
        let session = SessionBuilder::new(config).scenario(storm).build().unwrap();
        assert_eq!(session.config().scenario.name, "winter-storm");
        assert_eq!(
            session.system().unwrap().world().scenario.name,
            "winter-storm"
        );
    }

    #[test]
    fn system_and_world_share_one_generation() {
        let session = SessionBuilder::new(tiny_config()).build().unwrap();
        let world = session.world().unwrap();
        let system = session.system().unwrap();
        // The system adopted the memoised world: no second generation.
        assert_eq!(session.store().kind_stats("world").builds, 1);
        assert_eq!(session.store().kind_stats("world").memory_hits, 1);
        assert_eq!(system.world().rtp, world.rtp);

        // And the memoised system is bit-identical to a fresh assembly.
        let fresh = EctHubSystem::new(tiny_config()).unwrap();
        assert_eq!(system.world().rtp, fresh.world().rtp);
    }

    #[test]
    fn session_results_match_the_free_functions_bitwise() {
        let config = tiny_config();
        let session = SessionBuilder::new(config.clone())
            .threads(2)
            .build()
            .unwrap();

        // Generalist: session path vs the direct composition.
        let options = GeneralistOptions {
            threads: 2,
            ..GeneralistOptions::default()
        };
        let via_session = session.generalist(&options).unwrap();
        let system = EctHubSystem::new(config.clone()).unwrap();
        let baselines = heldout_baselines(&system, 2).unwrap();
        let direct = run_generalist_against(&system, &options, &baselines).unwrap();
        assert_eq!(
            serde_json::to_string(&via_session.report).unwrap(),
            serde_json::to_string(&direct.report).unwrap(),
            "session memoisation must not move a single bit"
        );

        // A repeat request is a pure cache hit: no second training.
        let builds = session.store().kind_stats("generalist").builds;
        let again = session.generalist(&options).unwrap();
        assert!(Arc::ptr_eq(&via_session, &again));
        assert_eq!(session.store().kind_stats("generalist").builds, builds);

        // Changed options miss (different artifact).
        let blind = GeneralistOptions {
            augmentation: ect_env::env::ObsAugmentation::NONE,
            threads: 2,
            ..GeneralistOptions::default()
        };
        session.generalist(&blind).unwrap();
        assert_eq!(session.store().kind_stats("generalist").builds, builds + 1);
        // Both arms shared one baseline pass.
        assert_eq!(session.store().kind_stats("heldout-baselines").builds, 1);
    }

    #[test]
    fn fleet_and_pricing_route_through_the_session() {
        let session = SessionBuilder::new(tiny_config())
            .threads(2)
            .build()
            .unwrap();
        let engines: Vec<(String, Box<dyn PricingEngine>)> =
            vec![("NoDiscount".into(), Box::new(NeverDiscount))];
        let cells = session.fleet(&engines).unwrap();
        assert_eq!(cells.len(), 2);

        let table = session.pricing_table(&[0.2]).unwrap();
        assert_eq!(table.methods.len(), 5);
        let again = session.pricing_table(&[0.2]).unwrap();
        assert!(Arc::ptr_eq(&table, &again));
        // A different discount grid is a different artifact.
        let other = session.pricing_table(&[0.1]).unwrap();
        assert!(!Arc::ptr_eq(&table, &other));
    }

    #[test]
    fn persistent_cache_serves_a_fresh_session_without_retraining() {
        let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop();
        dir.push("target");
        dir.push("cache-tests");
        dir.push(format!("session-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let config = tiny_config();
        let cold = SessionBuilder::new(config.clone())
            .threads(2)
            .label("cold")
            .persistent_cache(&dir)
            .build()
            .unwrap();
        assert_eq!(cold.cache_dir(), Some(dir.as_path()));
        let table = cold.pricing_table(&[0.2]).unwrap();
        assert_eq!(cold.store().kind_stats("pricing-table").builds, 1);

        // A fresh session over the same cache dir: disk hit, zero builds,
        // bit-identical payload.
        let warm = SessionBuilder::new(config)
            .threads(2)
            .label("warm")
            .persistent_cache(&dir)
            .build()
            .unwrap();
        let served = warm.pricing_table(&[0.2]).unwrap();
        let stats = warm.store().kind_stats("pricing-table");
        assert_eq!(stats.builds, 0, "warm session must not retrain");
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(
            serde_json::to_string(&*served).unwrap(),
            serde_json::to_string(&*table).unwrap(),
            "disk round-trip must be bit-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
