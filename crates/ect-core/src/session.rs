//! The operator session: one configured handle over the whole pipeline.
//!
//! A [`Session`] is the unified entry point the paper's "base-station-centric
//! hub controller" surface calls for: built once through a
//! [`SessionBuilder`] (base configuration, experiment scale, parallelism,
//! progress sink), it owns an [`ArtifactStore`] that memoises every
//! expensive intermediate — generated worlds, assembled systems, held-out
//! baselines, trained generalists, severity sweeps, pricing tables — keyed
//! by a content hash of their inputs. Experiments that used to re-train
//! from scratch (`generalization` and `severity_sweep` both training
//! generalists; every pricing figure re-fitting ECT-Price) share work
//! automatically when they run inside one session.
//!
//! All memoisation is safe by the workspace determinism contract: every
//! artifact is a pure function of its serialised inputs, so a cache hit is
//! bit-identical to a recomputation (pinned by the
//! `tests/session_equivalence.rs` suite).
//!
//! ```
//! use ect_core::prelude::*;
//!
//! let mut session = SessionBuilder::new(SystemConfig::miniature()).build()?;
//! let system = session.system()?; // generates the world once …
//! let again = session.system()?; // … and serves it from the store
//! assert!(std::sync::Arc::ptr_eq(&system, &again));
//! assert_eq!(session.store().kind_stats("system").misses, 1);
//! # Ok::<(), ect_types::EctError>(())
//! ```

use crate::artifact::{ArtifactKey, ArtifactStore};
use crate::generalist::{
    heldout_baselines, run_generalist_against, GeneralistOptions, GeneralistOutcome,
    HeldOutBaseline,
};
use crate::pricing::{pricing_table_impl, PricingTable};
use crate::scenario_grid::{scenario_grid_impl, NamedEngines, ScenarioGridResult};
use crate::scheduling::{run_fleet_impl, HubExperimentResult};
use crate::severity::{severity_sweep_impl, SeverityOptions, SeverityOutcome};
use crate::system::{EctHubSystem, SystemConfig};
use ect_data::dataset::{WorldConfig, WorldDataset};
use ect_data::scenario::ScenarioSpec;
use ect_price::engine::PricingEngine;
use ect_types::rng::EctRng;
use std::sync::Arc;

/// Seed-stream separator of [`Session::pricing_table`] (decorrelated from
/// the per-figure streams of the bench harness).
const PRICING_TABLE_SEED_STREAM: u64 = 0x7AB1_E002;

/// Budget preset of an experiment run.
///
/// Experiments translate the scale into their own configurations; the
/// shared CLI of the bench layer maps `--smoke` / (default) / `--full`
/// onto the three presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunScale {
    /// CI-sized: small worlds, a handful of episodes, seconds per
    /// experiment.
    Smoke,
    /// Laptop-scale defaults (seconds to minutes per experiment).
    Quick,
    /// The paper's budgets (500 training episodes, 2-year histories, …).
    Paper,
}

impl RunScale {
    /// Display label (`smoke` / `quick` / `paper`).
    pub fn label(self) -> &'static str {
        match self {
            RunScale::Smoke => "smoke",
            RunScale::Quick => "quick",
            RunScale::Paper => "paper",
        }
    }
}

impl std::fmt::Display for RunScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Where a session reports coarse progress ("training the generalist …").
pub type ProgressSink = Box<dyn Fn(&str) + Send>;

/// Configures and builds a [`Session`].
pub struct SessionBuilder {
    config: SystemConfig,
    scale: RunScale,
    threads: usize,
    progress: Option<ProgressSink>,
}

impl SessionBuilder {
    /// A builder over the given base system configuration.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            config,
            scale: RunScale::Quick,
            threads: 4,
            progress: None,
        }
    }

    /// Replaces the base configuration's exogenous scenario — the session's
    /// world source.
    #[must_use]
    pub fn scenario(mut self, spec: ScenarioSpec) -> Self {
        self.config.scenario = spec;
        self
    }

    /// Sets the experiment scale ([`RunScale::Quick`] by default).
    #[must_use]
    pub fn scale(mut self, scale: RunScale) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the master seed of the base configuration.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Worker threads for fan-out stages (0 = one worker per job).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a progress sink; without one the session is silent.
    #[must_use]
    pub fn progress(mut self, sink: ProgressSink) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Convenience: report progress to standard error, prefixed with the
    /// given tag (the harness binaries use their experiment id).
    #[must_use]
    pub fn stderr_progress(self, tag: &str) -> Self {
        let tag = format!("[{tag}]");
        self.progress(Box::new(move |msg| eprintln!("{tag} {msg}")))
    }

    /// Validates the base configuration and builds the session. No world is
    /// generated yet — artifacts materialise on first use.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemConfig::validate`] failures.
    pub fn build(self) -> ect_types::Result<Session> {
        self.config.validate()?;
        Ok(Session {
            config: self.config,
            scale: self.scale,
            threads: self.threads,
            progress: self.progress,
            store: ArtifactStore::new(),
        })
    }
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("scale", &self.scale)
            .field("threads", &self.threads)
            .field("progress", &self.progress.is_some())
            .finish_non_exhaustive()
    }
}

/// A configured handle over the pipeline, owning the artifact store.
///
/// Methods come in pairs: `*_for` takes an explicit [`SystemConfig`] (the
/// bench experiments each bring their own scale-derived configuration),
/// while the short names use the session's base configuration. Both routes
/// share one store, so any two calls with identical inputs share one
/// computation.
pub struct Session {
    config: SystemConfig,
    scale: RunScale,
    threads: usize,
    progress: Option<ProgressSink>,
    store: ArtifactStore,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("scale", &self.scale)
            .field("threads", &self.threads)
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Starts a builder over the given base configuration.
    pub fn builder(config: SystemConfig) -> SessionBuilder {
        SessionBuilder::new(config)
    }

    /// The session's base configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The experiment scale the session was built for.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// Worker threads for fan-out stages (0 = one worker per job).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The artifact store (inspection and probe counters).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Mutable store access, for downstream layers memoising their own
    /// artifact types (e.g. the bench registry's pricing artifacts).
    pub fn store_mut(&mut self) -> &mut ArtifactStore {
        &mut self.store
    }

    /// Reports coarse progress through the configured sink, if any.
    pub fn report(&self, message: &str) {
        if let Some(sink) = &self.progress {
            sink(message);
        }
    }

    fn announce_miss(&self, key: &ArtifactKey, message: &str) {
        if !self.store.contains(key) {
            self.report(message);
        }
    }

    // ------------------------------------------------------------------
    // Memoised artifacts
    // ------------------------------------------------------------------

    /// The generated world of `(world configuration, scenario)`, memoised.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn world_for(
        &mut self,
        world: &WorldConfig,
        spec: &ScenarioSpec,
    ) -> ect_types::Result<Arc<WorldDataset>> {
        let key = ArtifactKey::of("world", &(world, spec));
        self.store
            .get_or_insert(key, || WorldDataset::generate_scenario(world.clone(), spec))
    }

    /// The world of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn world(&mut self) -> ect_types::Result<Arc<WorldDataset>> {
        let world = self.config.world.clone();
        let spec = self.config.scenario.clone();
        self.world_for(&world, &spec)
    }

    /// The assembled system of an explicit configuration, memoised. The
    /// underlying world flows through the world memo, so a system and a
    /// bare world request for the same `(world config, scenario)` share one
    /// generation.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn system_for(&mut self, config: &SystemConfig) -> ect_types::Result<Arc<EctHubSystem>> {
        let key = ArtifactKey::of("system", config);
        let world = self.world_for(&config.world.clone(), &config.scenario.clone())?;
        self.store
            .get_or_insert(key, || EctHubSystem::from_parts(config.clone(), world))
    }

    /// The system of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn system(&mut self) -> ect_types::Result<Arc<EctHubSystem>> {
        let config = self.config.clone();
        self.system_for(&config)
    }

    /// The held-out baselines (per-scenario specialists + rule-based
    /// schedulers) of an explicit configuration, memoised — the expensive,
    /// generalist-independent half of a generalisation study.
    ///
    /// # Errors
    ///
    /// Propagates world-generation, training and evaluation failures.
    pub fn heldout_baselines_for(
        &mut self,
        config: &SystemConfig,
    ) -> ect_types::Result<Arc<Vec<HeldOutBaseline>>> {
        let key = ArtifactKey::of("heldout-baselines", config);
        self.announce_miss(&key, "scoring held-out specialists and heuristics …");
        let system = self.system_for(config)?;
        let threads = self.threads;
        self.store
            .get_or_insert(key, || heldout_baselines(&system, threads))
    }

    /// Held-out baselines of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates world-generation, training and evaluation failures.
    pub fn heldout_baselines(&mut self) -> ect_types::Result<Arc<Vec<HeldOutBaseline>>> {
        let config = self.config.clone();
        self.heldout_baselines_for(&config)
    }

    /// The scenario-mixture generalist of `(configuration, options)`,
    /// memoised: trained once, scored against the (memoised) held-out
    /// baselines. Any experiment requesting the same pair reuses the
    /// trained policy — the work-sharing path behind the combined
    /// `generalization` + `severity_sweep` acceptance probe.
    ///
    /// # Errors
    ///
    /// Propagates training and evaluation failures.
    pub fn generalist_for(
        &mut self,
        config: &SystemConfig,
        options: &GeneralistOptions,
    ) -> ect_types::Result<Arc<GeneralistOutcome>> {
        let key = ArtifactKey::of("generalist", &(config, options));
        let baselines = self.heldout_baselines_for(config)?;
        let system = self.system_for(config)?;
        self.announce_miss(&key, "training the scenario-mixture generalist …");
        self.store
            .get_or_insert(key, || run_generalist_against(&system, options, &baselines))
    }

    /// The generalist of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates training and evaluation failures.
    pub fn generalist(
        &mut self,
        options: &GeneralistOptions,
    ) -> ect_types::Result<Arc<GeneralistOutcome>> {
        let config = self.config.clone();
        self.generalist_for(&config, options)
    }

    /// The severity sweep of `(configuration, options)`, memoised: one
    /// domain-randomised generalist trained per distinct pair, its per-axis
    /// robustness curves served from the store afterwards.
    ///
    /// # Errors
    ///
    /// Propagates option validation, training and evaluation failures.
    pub fn severity_for(
        &mut self,
        config: &SystemConfig,
        options: &SeverityOptions,
    ) -> ect_types::Result<Arc<SeverityOutcome>> {
        let key = ArtifactKey::of("severity", &(config, options));
        let system = self.system_for(config)?;
        self.announce_miss(&key, "training the domain-randomised generalist …");
        self.store
            .get_or_insert(key, || severity_sweep_impl(&system, options))
    }

    /// The severity sweep of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates option validation, training and evaluation failures.
    pub fn severity_sweep(
        &mut self,
        options: &SeverityOptions,
    ) -> ect_types::Result<Arc<SeverityOutcome>> {
        let config = self.config.clone();
        self.severity_for(&config, options)
    }

    /// The Table II pricing table of `(configuration, discount levels)`,
    /// memoised: the paper set of pricing engines is trained once per
    /// distinct pair (seed stream decorrelated from the bench harness's
    /// figure streams).
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn pricing_table_for(
        &mut self,
        config: &SystemConfig,
        discounts: &[f64],
    ) -> ect_types::Result<Arc<PricingTable>> {
        let key = ArtifactKey::of("pricing-table", &(config, discounts));
        let system = self.system_for(config)?;
        self.announce_miss(&key, "training the paper's pricing engines …");
        self.store.get_or_insert(key, || {
            let (train, test) = system.pricing_datasets();
            let mut rng = EctRng::seed_from(system.config().seed ^ PRICING_TABLE_SEED_STREAM);
            pricing_table_impl(&system, &train, &test, discounts, &mut rng)
        })
    }

    /// The pricing table of the session's base configuration, memoised.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn pricing_table(&mut self, discounts: &[f64]) -> ect_types::Result<Arc<PricingTable>> {
        let config = self.config.clone();
        self.pricing_table_for(&config, discounts)
    }

    // ------------------------------------------------------------------
    // Fan-out stages (pass-through: pricing engines are opaque trait
    // objects, not content-addressable inputs)
    // ------------------------------------------------------------------

    /// Runs the full hub × engine fleet of an explicit configuration on the
    /// batched engine, using the session's worker-thread budget.
    ///
    /// # Errors
    ///
    /// Returns the first job error encountered, if any.
    pub fn fleet_for(
        &mut self,
        config: &SystemConfig,
        engines: &[(String, Box<dyn PricingEngine>)],
    ) -> ect_types::Result<Vec<HubExperimentResult>> {
        let system = self.system_for(config)?;
        run_fleet_impl(&system, engines, self.threads)
    }

    /// Runs the fleet of the session's base configuration.
    ///
    /// # Errors
    ///
    /// Returns the first job error encountered, if any.
    pub fn fleet(
        &mut self,
        engines: &[(String, Box<dyn PricingEngine>)],
    ) -> ect_types::Result<Vec<HubExperimentResult>> {
        let config = self.config.clone();
        self.fleet_for(&config, engines)
    }

    /// Runs the scenario × method grid of an explicit configuration over
    /// the batched fleet workers, using the session's thread budget.
    ///
    /// # Errors
    ///
    /// Propagates world-generation, training and evaluation failures.
    pub fn scenario_grid_for(
        &mut self,
        config: &SystemConfig,
        scenarios: &[ScenarioSpec],
        engines_for: &(dyn Fn(&EctHubSystem) -> ect_types::Result<NamedEngines> + Sync),
    ) -> ect_types::Result<Vec<ScenarioGridResult>> {
        let system = self.system_for(config)?;
        scenario_grid_impl(&system, scenarios, engines_for, self.threads)
    }

    /// Runs the scenario grid of the session's base configuration.
    ///
    /// # Errors
    ///
    /// Propagates world-generation, training and evaluation failures.
    pub fn scenario_grid(
        &mut self,
        scenarios: &[ScenarioSpec],
        engines_for: &(dyn Fn(&EctHubSystem) -> ect_types::Result<NamedEngines> + Sync),
    ) -> ect_types::Result<Vec<ScenarioGridResult>> {
        let config = self.config.clone();
        self.scenario_grid_for(&config, scenarios, engines_for)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ect_price::engine::NeverDiscount;

    fn tiny_config() -> SystemConfig {
        let mut config = SystemConfig::miniature();
        config.world.num_hubs = 2;
        config.world.horizon_slots = 24 * 4;
        config.trainer.episodes = 2;
        config.test_episodes = 1;
        config
    }

    #[test]
    fn builder_validates_and_carries_knobs() {
        let session = SessionBuilder::new(SystemConfig::miniature())
            .scale(RunScale::Smoke)
            .threads(2)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(session.scale(), RunScale::Smoke);
        assert_eq!(session.threads(), 2);
        assert_eq!(session.config().seed, 99);
        assert_eq!(RunScale::Smoke.to_string(), "smoke");
        assert_eq!(RunScale::Paper.label(), "paper");

        let mut bad = SystemConfig::miniature();
        bad.discount = 0.0;
        assert!(SessionBuilder::new(bad).build().is_err());
    }

    #[test]
    fn scenario_knob_replaces_the_world_source() {
        use ect_data::scenario::scenario_by_name;
        let config = SystemConfig::miniature();
        let storm = scenario_by_name("winter-storm", config.world.horizon_slots).unwrap();
        let mut session = SessionBuilder::new(config).scenario(storm).build().unwrap();
        assert_eq!(session.config().scenario.name, "winter-storm");
        assert_eq!(
            session.system().unwrap().world().scenario.name,
            "winter-storm"
        );
    }

    #[test]
    fn system_and_world_share_one_generation() {
        let mut session = SessionBuilder::new(tiny_config()).build().unwrap();
        let world = session.world().unwrap();
        let system = session.system().unwrap();
        // The system adopted the memoised world: no second generation.
        assert_eq!(session.store().kind_stats("world").misses, 1);
        assert_eq!(session.store().kind_stats("world").hits, 1);
        assert_eq!(system.world().rtp, world.rtp);

        // And the memoised system is bit-identical to a fresh assembly.
        let fresh = EctHubSystem::new(tiny_config()).unwrap();
        assert_eq!(system.world().rtp, fresh.world().rtp);
    }

    #[test]
    fn session_results_match_the_free_functions_bitwise() {
        let config = tiny_config();
        let mut session = SessionBuilder::new(config.clone())
            .threads(2)
            .build()
            .unwrap();

        // Generalist: session path vs the direct composition.
        let options = GeneralistOptions {
            threads: 2,
            ..GeneralistOptions::default()
        };
        let via_session = session.generalist(&options).unwrap();
        let system = EctHubSystem::new(config.clone()).unwrap();
        let baselines = heldout_baselines(&system, 2).unwrap();
        let direct = run_generalist_against(&system, &options, &baselines).unwrap();
        assert_eq!(
            serde_json::to_string(&via_session.report).unwrap(),
            serde_json::to_string(&direct.report).unwrap(),
            "session memoisation must not move a single bit"
        );

        // A repeat request is a pure cache hit: no second training.
        let misses = session.store().kind_stats("generalist").misses;
        let again = session.generalist(&options).unwrap();
        assert!(Arc::ptr_eq(&via_session, &again));
        assert_eq!(session.store().kind_stats("generalist").misses, misses);

        // Changed options miss (different artifact).
        let blind = GeneralistOptions {
            augmentation: ect_env::env::ObsAugmentation::NONE,
            threads: 2,
            ..GeneralistOptions::default()
        };
        session.generalist(&blind).unwrap();
        assert_eq!(session.store().kind_stats("generalist").misses, misses + 1);
        // Both arms shared one baseline pass.
        assert_eq!(session.store().kind_stats("heldout-baselines").misses, 1);
    }

    #[test]
    fn fleet_and_pricing_route_through_the_session() {
        let mut session = SessionBuilder::new(tiny_config())
            .threads(2)
            .build()
            .unwrap();
        let engines: Vec<(String, Box<dyn PricingEngine>)> =
            vec![("NoDiscount".into(), Box::new(NeverDiscount))];
        let cells = session.fleet(&engines).unwrap();
        assert_eq!(cells.len(), 2);

        let table = session.pricing_table(&[0.2]).unwrap();
        assert_eq!(table.methods.len(), 5);
        let again = session.pricing_table(&[0.2]).unwrap();
        assert!(Arc::ptr_eq(&table, &again));
        // A different discount grid is a different artifact.
        let other = session.pricing_table(&[0.1]).unwrap();
        assert!(!Arc::ptr_eq(&table, &other));
    }
}
