//! The session artifact store: content-addressed memoisation of expensive
//! intermediates.
//!
//! Every costly stage of the pipeline — generating a [`WorldDataset`]
//! (ect-data), training a pricing engine (ect-price), training a specialist
//! or generalist policy (ect-drl) — is a *pure function of its serialisable
//! inputs*: the same configuration always reproduces the same artifact bit
//! for bit (the workspace determinism contract, see `docs/ARCHITECTURE.md`).
//! That makes memoisation safe: an [`ArtifactStore`] keys each artifact by a
//! content hash of its inputs ([`ArtifactKey`]) and hands out `Arc`-shared
//! results, so experiments that request the same world, baselines or policy
//! share one computation instead of re-running it.
//!
//! The store is deliberately *type-erased* (`Arc<dyn Any>`): the core
//! [`Session`](crate::session::Session) memoises systems, worlds, held-out
//! baselines and trained policies through it, and downstream layers (the
//! `ect-bench` registry) memoise their own artifact types — e.g. the shared
//! pricing model — through the same store without `ect-core` knowing their
//! shape.
//!
//! Lookups resolve **memory → disk → build**: the store is internally
//! synchronised (shared-reference API, so experiments can run in parallel
//! over one session), and serialisable artifacts can additionally spill to
//! a persistent [`DiskCache`] so repeated *processes* skip the build too.
//! Concurrent requests for one key serialise on a per-key slot: exactly one
//! caller builds, everyone else blocks briefly and then hits. Builders must
//! not recursively request artifacts from the same store — resolve
//! dependencies *before* entering the builder (every session method does).
//!
//! [`WorldDataset`]: ect_data::dataset::WorldDataset

use crate::cache::{CacheProvenance, DiskCache};
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Content-addressed identity of one artifact: the artifact kind (a short
/// static label such as `"world"` or `"generalist"`) plus an FNV-1a digest
/// of the serialised inputs that produce it.
///
/// Two keys are equal exactly when the kind matches and the inputs
/// serialise identically — any input change (a different seed, horizon,
/// scenario modifier, training budget, …) changes the digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Artifact kind label (namespaces the digest).
    pub kind: &'static str,
    /// FNV-1a hash of the serialised inputs.
    pub digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl ArtifactKey {
    /// Keys an artifact by a content hash of its serialisable inputs.
    ///
    /// The inputs are serialised through the workspace serde stack, so the
    /// digest covers every field that participates in `Serialize` — exactly
    /// the fields that determine the artifact under the determinism
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if the inputs fail to serialise (the workspace value-tree
    /// serialiser is infallible for derived impls, so this indicates a bug).
    pub fn of<T: serde::Serialize + ?Sized>(kind: &'static str, inputs: &T) -> Self {
        let json = serde_json::to_string(inputs).expect("artifact inputs serialise");
        Self {
            kind,
            digest: fnv1a(json.as_bytes()),
        }
    }

    /// Like [`ArtifactKey::of`], but additionally folds a per-kind **code
    /// version** into the digest. Bump the version constant whenever the
    /// builder's algorithm changes shape (not just its inputs): every
    /// existing memo and disk entry for the kind silently becomes a miss,
    /// so stale artifacts built by the old code can never be served.
    ///
    /// # Panics
    ///
    /// Panics if the inputs fail to serialise (same contract as
    /// [`ArtifactKey::of`]).
    pub fn versioned<T: serde::Serialize + ?Sized>(
        kind: &'static str,
        version: u32,
        inputs: &T,
    ) -> Self {
        let json = serde_json::to_string(inputs).expect("artifact inputs serialise");
        let mut digest = fnv1a(json.as_bytes());
        for &b in &version.to_le_bytes() {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(FNV_PRIME);
        }
        Self { kind, digest }
    }

    /// The key as a stable display string, e.g. `world:9c3f21ab04d87e51`.
    pub fn display(&self) -> String {
        format!("{}:{:016x}", self.kind, self.digest)
    }
}

impl std::fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display())
    }
}

/// Lookup counters of one artifact kind, split by where the artifact came
/// from: the in-process memo, the persistent disk cache, or a fresh build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Lookups served from the in-memory store.
    pub memory_hits: usize,
    /// Lookups served from the persistent disk cache (deserialised, no
    /// build ran).
    pub disk_hits: usize,
    /// Lookups that ran the builder (the computation budget spent).
    pub builds: usize,
}

impl KindStats {
    /// Lookups that skipped the builder (memory + disk).
    pub fn hits(&self) -> usize {
        self.memory_hits + self.disk_hits
    }
}

/// One memo slot: concurrent requesters of the same key serialise on the
/// slot lock, so exactly one of them builds.
type Slot = Arc<Mutex<Option<Arc<dyn Any + Send + Sync>>>>;

#[derive(Default)]
struct Inner {
    entries: HashMap<ArtifactKey, Slot>,
    /// Keys whose slot is filled (tracked here so `contains`/`len` never
    /// have to take a slot lock that a long build might hold).
    complete: std::collections::HashSet<ArtifactKey>,
    stats: HashMap<&'static str, KindStats>,
}

/// Where a lookup was resolved (stats bookkeeping).
enum Resolution {
    Disk,
    Build,
}

/// A content-addressed memo store for expensive pipeline intermediates.
///
/// Artifacts are held as `Arc<dyn Any>` and recovered by their concrete
/// type through [`ArtifactStore::get_or_insert`]; the per-kind
/// memory/disk/build counters make work sharing observable (the acceptance
/// probes of the experiment harness assert on them). The store is
/// internally synchronised: all methods take `&self`, so one store can back
/// experiments running on parallel scheduler threads.
///
/// With an attached [`DiskCache`] (see [`ArtifactStore::with_disk`]),
/// [`ArtifactStore::get_or_insert_cached`] additionally persists artifacts
/// across processes: lookups resolve memory → disk → build, and any
/// unreadable or version-mismatched disk entry is a miss, never an error.
///
/// Unlike the LRU-bounded `WorldCache` (which serves the *unbounded*
/// domain-randomised spec space inside a single training run), the
/// in-memory side holds every artifact for the session's lifetime: the
/// artifact population of an experiment run is small and bounded by
/// construction — one entry per distinct `(kind, inputs)` pair that the
/// session touches. The disk side is bounded by the cache's byte budget.
#[derive(Default)]
pub struct ArtifactStore {
    inner: Mutex<Inner>,
    disk: Option<DiskCache>,
    provenance: CacheProvenance,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ArtifactStore")
            .field("len", &inner.complete.len())
            .field("stats", &inner.stats)
            .field("disk", &self.disk.as_ref().map(DiskCache::root))
            .finish()
    }
}

impl ArtifactStore {
    /// An empty in-memory store (no persistence).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store that spills [`ArtifactStore::get_or_insert_cached`]
    /// artifacts to the given disk cache, stamping `provenance` into every
    /// entry it publishes.
    pub fn with_disk(disk: DiskCache, provenance: CacheProvenance) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            disk: Some(disk),
            provenance,
        }
    }

    /// The attached persistent cache, if any.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// The slot of `key`, created empty on first request.
    fn slot(&self, key: ArtifactKey) -> Slot {
        Arc::clone(self.inner.lock().entries.entry(key).or_default())
    }

    fn note_memory_hit(&self, kind: &'static str) {
        self.inner.lock().stats.entry(kind).or_default().memory_hits += 1;
    }

    fn note_resolved(&self, key: ArtifactKey, how: Resolution) {
        let mut inner = self.inner.lock();
        let stats = inner.stats.entry(key.kind).or_default();
        match how {
            Resolution::Disk => stats.disk_hits += 1,
            Resolution::Build => stats.builds += 1,
        }
        inner.complete.insert(key);
    }

    fn downcast<T: Any + Send + Sync>(
        key: ArtifactKey,
        found: &Arc<dyn Any + Send + Sync>,
    ) -> Arc<T> {
        Arc::clone(found)
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("artifact {key} stored with a different type"))
    }

    /// The artifact under `key`, built by `build` on first request and
    /// served from the in-memory store afterwards. Concurrent requests for
    /// one key build exactly once (later callers block on the slot until
    /// the build finishes, then hit).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (nothing is cached on failure).
    ///
    /// # Panics
    ///
    /// Panics when the stored artifact under `key` has a different concrete
    /// type than `T` — two callers disagreeing on the payload type of one
    /// kind is a programming error, not a runtime condition.
    pub fn get_or_insert<T, F>(&self, key: ArtifactKey, build: F) -> ect_types::Result<Arc<T>>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> ect_types::Result<T>,
    {
        let slot = self.slot(key);
        let mut guard = slot.lock();
        if let Some(found) = guard.as_ref() {
            let typed = Self::downcast::<T>(key, found);
            drop(guard);
            self.note_memory_hit(key.kind);
            ect_obs::event("artifact.memory_hit", &[("kind", key.kind)]);
            return Ok(typed);
        }
        let built = {
            let _span = ect_obs::span("artifact.build").field("kind", key.kind);
            Arc::new(build()?)
        };
        *guard = Some(Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
        drop(guard);
        self.note_resolved(key, Resolution::Build);
        Ok(built)
    }

    /// The artifact under `key`, resolved **memory → disk → build**: like
    /// [`ArtifactStore::get_or_insert`], but with an attached [`DiskCache`]
    /// the artifact is also persisted across processes — a valid disk entry
    /// is deserialised instead of built (a *disk hit*, bit-identical to the
    /// build by the determinism contract), and fresh builds are published
    /// back to disk (atomic write-then-rename, LRU-evicted to the cache's
    /// byte budget). Without a disk cache this is exactly
    /// `get_or_insert`.
    ///
    /// Any unreadable, corrupted or version-mismatched disk entry is a
    /// miss, never an error.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (nothing is cached on failure).
    ///
    /// # Panics
    ///
    /// Panics on a concrete-type mismatch with an already-stored artifact
    /// (same contract as [`ArtifactStore::get_or_insert`]).
    pub fn get_or_insert_cached<T, F>(
        &self,
        key: ArtifactKey,
        build: F,
    ) -> ect_types::Result<Arc<T>>
    where
        T: Any + Send + Sync + Serialize + DeserializeOwned,
        F: FnOnce() -> ect_types::Result<T>,
    {
        let slot = self.slot(key);
        let mut guard = slot.lock();
        if let Some(found) = guard.as_ref() {
            let typed = Self::downcast::<T>(key, found);
            drop(guard);
            self.note_memory_hit(key.kind);
            ect_obs::event("artifact.memory_hit", &[("kind", key.kind)]);
            return Ok(typed);
        }
        if let Some(disk) = &self.disk {
            if let Some(value) = disk
                .load(&key)
                .and_then(|bytes| String::from_utf8(bytes).ok())
                .and_then(|json| serde_json::from_str::<T>(&json).ok())
            {
                let loaded = Arc::new(value);
                *guard = Some(Arc::clone(&loaded) as Arc<dyn Any + Send + Sync>);
                drop(guard);
                self.note_resolved(key, Resolution::Disk);
                ect_obs::event("artifact.disk_hit", &[("kind", key.kind)]);
                return Ok(loaded);
            }
        }
        let built = {
            let _span = ect_obs::span("artifact.build").field("kind", key.kind);
            Arc::new(build()?)
        };
        *guard = Some(Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
        drop(guard);
        self.note_resolved(key, Resolution::Build);
        if let Some(disk) = &self.disk {
            if let Ok(json) = serde_json::to_string(&*built) {
                disk.store(&key, &self.provenance, json.as_bytes());
            }
        }
        Ok(built)
    }

    /// The artifact under `key`, if present in memory — a read-only peek
    /// that does not touch the counters.
    ///
    /// # Panics
    ///
    /// Panics when the stored artifact has a different concrete type than
    /// `T` (same contract as [`ArtifactStore::get_or_insert`]).
    pub fn get<T: Any + Send + Sync>(&self, key: &ArtifactKey) -> Option<Arc<T>> {
        let slot = {
            let inner = self.inner.lock();
            if !inner.complete.contains(key) {
                return None;
            }
            Arc::clone(inner.entries.get(key)?)
        };
        let guard = slot.lock();
        guard.as_ref().map(|found| Self::downcast::<T>(*key, found))
    }

    /// `true` when an artifact is stored in memory under `key`.
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.inner.lock().complete.contains(key)
    }

    /// `true` when the artifact is available without a build: stored in
    /// memory, or present (though not yet validated) in the disk cache.
    pub fn available_without_build(&self, key: &ArtifactKey) -> bool {
        self.contains(key) || self.disk.as_ref().is_some_and(|disk| disk.contains(key))
    }

    /// Number of stored artifacts (in memory).
    pub fn len(&self) -> usize {
        self.inner.lock().complete.len()
    }

    /// `true` when nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup counters of one artifact kind (zero when never touched).
    pub fn kind_stats(&self, kind: &str) -> KindStats {
        self.inner
            .lock()
            .stats
            .get(kind)
            .copied()
            .unwrap_or_default()
    }

    /// Every touched kind with its counters, sorted by kind — the
    /// per-kind breakdown `run_all` prints after a pass.
    pub fn stats_snapshot(&self) -> Vec<(&'static str, KindStats)> {
        let inner = self.inner.lock();
        let mut out: Vec<(&'static str, KindStats)> =
            inner.stats.iter().map(|(&k, &s)| (k, s)).collect();
        out.sort_by_key(|(kind, _)| *kind);
        out
    }

    /// Total lookups served without a build (memory + disk) across all
    /// kinds.
    pub fn hits(&self) -> usize {
        self.inner.lock().stats.values().map(KindStats::hits).sum()
    }

    /// Total lookups served from the persistent disk cache.
    pub fn disk_hits(&self) -> usize {
        self.inner.lock().stats.values().map(|s| s.disk_hits).sum()
    }

    /// Total builder invocations across all kinds — the computation budget
    /// actually spent.
    pub fn builds(&self) -> usize {
        self.inner.lock().stats.values().map(|s| s.builds).sum()
    }

    /// Historical alias of [`ArtifactStore::builds`] (every build used to
    /// be a "miss"; with the disk tier a miss may now be a disk hit).
    pub fn misses(&self) -> usize {
        self.builds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keys_are_stable_and_input_sensitive() {
        let a = ArtifactKey::of("world", &(7u64, "baseline"));
        let b = ArtifactKey::of("world", &(7u64, "baseline"));
        assert_eq!(a, b);
        assert_eq!(a.display(), b.to_string());
        // Any input change moves the digest; a kind change moves the key.
        assert_ne!(a, ArtifactKey::of("world", &(8u64, "baseline")));
        assert_ne!(a, ArtifactKey::of("world", &(7u64, "heatwave")));
        assert_ne!(a, ArtifactKey::of("system", &(7u64, "baseline")));
    }

    #[test]
    fn versioned_keys_separate_code_versions() {
        let v1 = ArtifactKey::versioned("generalist", 1, &(7u64, "baseline"));
        assert_eq!(
            v1,
            ArtifactKey::versioned("generalist", 1, &(7u64, "baseline"))
        );
        // Bumping the code version moves the digest for identical inputs…
        assert_ne!(
            v1,
            ArtifactKey::versioned("generalist", 2, &(7u64, "baseline"))
        );
        // …and stays input-sensitive within one version.
        assert_ne!(
            v1,
            ArtifactKey::versioned("generalist", 1, &(8u64, "baseline"))
        );
        // A versioned key never collides with the unversioned form.
        assert_ne!(v1, ArtifactKey::of("generalist", &(7u64, "baseline")));
    }

    #[test]
    fn a_version_bump_invalidates_memo_and_disk_entries() {
        use crate::cache::{CacheProvenance, DiskCache};
        let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop();
        dir.push("target");
        dir.push("cache-tests");
        dir.push(format!("store-version-bump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let prov = CacheProvenance::default();

        // Old code version publishes its artifact to disk.
        let store = ArtifactStore::with_disk(DiskCache::new(&dir), prov.clone());
        let old_key = ArtifactKey::versioned("bumped", 1, &3u8);
        let _: Arc<Vec<u64>> = store
            .get_or_insert_cached(old_key, || Ok(vec![1, 2]))
            .unwrap();

        // New code version (fresh process): the old entry must not be
        // served — the lookup builds, it does not disk-hit.
        let store2 = ArtifactStore::with_disk(DiskCache::new(&dir), prov);
        let new_key = ArtifactKey::versioned("bumped", 2, &3u8);
        let rebuilt: Arc<Vec<u64>> = store2
            .get_or_insert_cached(new_key, || Ok(vec![1, 2, 3]))
            .unwrap();
        assert_eq!(rebuilt.len(), 3);
        assert_eq!(
            store2.kind_stats("bumped"),
            KindStats {
                memory_hits: 0,
                disk_hits: 0,
                builds: 1
            },
            "a version bump must invalidate persisted artifacts"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_builds_once_and_shares_the_arc() {
        let store = ArtifactStore::new();
        let key = ArtifactKey::of("demo", &42u64);
        let mut builds = 0usize;
        let first: Arc<Vec<u64>> = store
            .get_or_insert(key, || {
                builds += 1;
                Ok(vec![1, 2, 3])
            })
            .unwrap();
        let second: Arc<Vec<u64>> = store
            .get_or_insert(key, || {
                builds += 1;
                Ok(vec![9, 9, 9])
            })
            .unwrap();
        assert_eq!(builds, 1, "second lookup must not rebuild");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            store.kind_stats("demo"),
            KindStats {
                memory_hits: 1,
                disk_hits: 0,
                builds: 1
            }
        );
        assert_eq!(store.kind_stats("demo").hits(), 1);
        assert_eq!(store.len(), 1);
        assert!(store.contains(&key));
        assert!(!store.is_empty());

        // get() peeks without counting.
        let peeked: Arc<Vec<u64>> = store.get(&key).expect("stored");
        assert!(Arc::ptr_eq(&peeked, &first));
        assert_eq!(store.kind_stats("demo").hits(), 1);
        assert!(store
            .get::<Vec<u64>>(&ArtifactKey::of("demo", &43u64))
            .is_none());
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let store = ArtifactStore::new();
        let key = ArtifactKey::of("flaky", &1u8);
        let err: ect_types::Result<Arc<u32>> = store.get_or_insert(key, || {
            Err(ect_types::EctError::InvalidConfig("boom".into()))
        });
        assert!(err.is_err());
        assert!(!store.contains(&key));
        // The next attempt runs the builder again and succeeds.
        let ok: Arc<u32> = store.get_or_insert(key, || Ok(5)).unwrap();
        assert_eq!(*ok, 5);
        assert_eq!(
            store.kind_stats("flaky"),
            KindStats {
                memory_hits: 0,
                disk_hits: 0,
                builds: 1
            },
            "failures are not counted as builds"
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let store = ArtifactStore::new();
        let key = ArtifactKey::of("demo", &0u8);
        let _: Arc<u32> = store.get_or_insert(key, || Ok(1)).unwrap();
        let _: Arc<String> = store.get_or_insert(key, || Ok("no".into())).unwrap();
    }

    #[test]
    fn concurrent_requests_for_one_key_build_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let store = ArtifactStore::new();
        let key = ArtifactKey::of("contended", &0u8);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let got: Arc<u64> = store
                        .get_or_insert(key, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            Ok(7)
                        })
                        .unwrap();
                    assert_eq!(*got, 7);
                });
            }
        });
        assert_eq!(builds.into_inner(), 1, "one build under contention");
        let stats = store.kind_stats("contended");
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.memory_hits, 7);
    }

    #[test]
    fn cached_lookups_resolve_memory_then_disk_then_build() {
        use crate::cache::{CacheProvenance, DiskCache};
        let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop();
        dir.push("target");
        dir.push("cache-tests");
        dir.push(format!("store-tiers-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let key = ArtifactKey::of("tiered", &11u8);
        let prov = CacheProvenance::default();

        // Process one: builds, publishes to disk, then memory-hits.
        let store = ArtifactStore::with_disk(DiskCache::new(&dir), prov.clone());
        let built: Arc<Vec<f64>> = store
            .get_or_insert_cached(key, || Ok(vec![1.5, -0.0, 310.25]))
            .unwrap();
        let again: Arc<Vec<f64>> = store
            .get_or_insert_cached(key, || panic!("memory hit must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&built, &again));
        assert_eq!(
            store.kind_stats("tiered"),
            KindStats {
                memory_hits: 1,
                disk_hits: 0,
                builds: 1
            }
        );

        // "Process" two (fresh store, same cache dir): disk hit, no build,
        // bit-identical payload.
        let store2 = ArtifactStore::with_disk(DiskCache::new(&dir), prov.clone());
        let loaded: Arc<Vec<f64>> = store2
            .get_or_insert_cached(key, || panic!("disk hit must not rebuild"))
            .unwrap();
        assert_eq!(loaded.len(), 3);
        for (a, b) in loaded.iter().zip(built.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            store2.kind_stats("tiered"),
            KindStats {
                memory_hits: 0,
                disk_hits: 1,
                builds: 0
            }
        );
        assert!(store2.available_without_build(&key));

        // Corrupt the entry: process three falls back to a clean rebuild.
        let entry = dir.join("tiered").join(format!("{:016x}.ectc", key.digest));
        std::fs::write(&entry, b"ECTC1\ngarbage header\n[]").unwrap();
        let store3 = ArtifactStore::with_disk(DiskCache::new(&dir), prov);
        let rebuilt: Arc<Vec<f64>> = store3
            .get_or_insert_cached(key, || Ok(vec![1.5, -0.0, 310.25]))
            .unwrap();
        assert_eq!(rebuilt.len(), 3);
        assert_eq!(
            store3.kind_stats("tiered"),
            KindStats {
                memory_hits: 0,
                disk_hits: 0,
                builds: 1
            },
            "a corrupted entry is a miss, never an error"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_a_disk_cache_cached_lookups_are_plain_memoisation() {
        let store = ArtifactStore::new();
        let key = ArtifactKey::of("plain", &5u8);
        let _: Arc<u64> = store.get_or_insert_cached(key, || Ok(9)).unwrap();
        let _: Arc<u64> = store
            .get_or_insert_cached(key, || panic!("must hit"))
            .unwrap();
        assert_eq!(
            store.kind_stats("plain"),
            KindStats {
                memory_hits: 1,
                disk_hits: 0,
                builds: 1
            }
        );
        assert_eq!(store.disk_hits(), 0);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.builds(), 1);
        assert_eq!(store.misses(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite contract: the key hash is a pure function of the
        /// serialised inputs — identical inputs collide, any change to any
        /// field separates the keys.
        #[test]
        fn key_hash_tracks_input_identity(
            seed_a in 0u64..1_000_000,
            seed_b in 0u64..1_000_000,
            name_a in 0usize..6,
            name_b in 0usize..6,
            scale in 0usize..4,
        ) {
            const NAMES: [&str; 6] =
                ["", "baseline", "heatwave", "winter-storm", "ev-surge", "outage"];
            let a = ArtifactKey::of("probe", &(seed_a, NAMES[name_a], scale));
            let a_again = ArtifactKey::of("probe", &(seed_a, NAMES[name_a], scale));
            prop_assert_eq!(a, a_again, "identical inputs must share one key");
            let b = ArtifactKey::of("probe", &(seed_b, NAMES[name_b], scale));
            if seed_a == seed_b && name_a == name_b {
                prop_assert_eq!(a, b);
            } else {
                prop_assert_ne!(a, b);
            }
        }
    }
}
