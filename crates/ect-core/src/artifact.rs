//! The session artifact store: content-addressed memoisation of expensive
//! intermediates.
//!
//! Every costly stage of the pipeline — generating a [`WorldDataset`]
//! (ect-data), training a pricing engine (ect-price), training a specialist
//! or generalist policy (ect-drl) — is a *pure function of its serialisable
//! inputs*: the same configuration always reproduces the same artifact bit
//! for bit (the workspace determinism contract, see `docs/ARCHITECTURE.md`).
//! That makes memoisation safe: an [`ArtifactStore`] keys each artifact by a
//! content hash of its inputs ([`ArtifactKey`]) and hands out `Arc`-shared
//! results, so experiments that request the same world, baselines or policy
//! share one computation instead of re-running it.
//!
//! The store is deliberately *type-erased* (`Arc<dyn Any>`): the core
//! [`Session`](crate::session::Session) memoises systems, worlds, held-out
//! baselines and trained policies through it, and downstream layers (the
//! `ect-bench` registry) memoise their own artifact types — e.g. the shared
//! pricing artifacts — through the same store without `ect-core` knowing
//! their shape.
//!
//! [`WorldDataset`]: ect_data::dataset::WorldDataset

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Content-addressed identity of one artifact: the artifact kind (a short
/// static label such as `"world"` or `"generalist"`) plus an FNV-1a digest
/// of the serialised inputs that produce it.
///
/// Two keys are equal exactly when the kind matches and the inputs
/// serialise identically — any input change (a different seed, horizon,
/// scenario modifier, training budget, …) changes the digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Artifact kind label (namespaces the digest).
    pub kind: &'static str,
    /// FNV-1a hash of the serialised inputs.
    pub digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl ArtifactKey {
    /// Keys an artifact by a content hash of its serialisable inputs.
    ///
    /// The inputs are serialised through the workspace serde stack, so the
    /// digest covers every field that participates in `Serialize` — exactly
    /// the fields that determine the artifact under the determinism
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if the inputs fail to serialise (the workspace value-tree
    /// serialiser is infallible for derived impls, so this indicates a bug).
    pub fn of<T: serde::Serialize + ?Sized>(kind: &'static str, inputs: &T) -> Self {
        let json = serde_json::to_string(inputs).expect("artifact inputs serialise");
        Self {
            kind,
            digest: fnv1a(json.as_bytes()),
        }
    }

    /// The key as a stable display string, e.g. `world:9c3f21ab04d87e51`.
    pub fn display(&self) -> String {
        format!("{}:{:016x}", self.kind, self.digest)
    }
}

impl std::fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display())
    }
}

/// Hit/miss counters of one artifact kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Lookups served from the store.
    pub hits: usize,
    /// Lookups that ran the builder (the computation budget spent).
    pub misses: usize,
}

/// A content-addressed memo store for expensive pipeline intermediates.
///
/// Artifacts are held as `Arc<dyn Any>` and recovered by their concrete
/// type through [`ArtifactStore::get_or_insert`]; the per-kind hit/miss
/// counters make work sharing observable (the acceptance probes of the
/// experiment harness assert on them).
///
/// Unlike the LRU-bounded `WorldCache` (which serves the *unbounded*
/// domain-randomised spec space inside a single training run), the store
/// holds every artifact for the session's lifetime: the artifact population
/// of an experiment run is small and bounded by construction — one entry
/// per distinct `(kind, inputs)` pair that the session touches.
#[derive(Default)]
pub struct ArtifactStore {
    entries: HashMap<ArtifactKey, Arc<dyn Any + Send + Sync>>,
    stats: HashMap<&'static str, KindStats>,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("len", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The artifact under `key`, built by `build` on first request and
    /// served from the store afterwards.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (nothing is cached on failure).
    ///
    /// # Panics
    ///
    /// Panics when the stored artifact under `key` has a different concrete
    /// type than `T` — two callers disagreeing on the payload type of one
    /// kind is a programming error, not a runtime condition.
    pub fn get_or_insert<T, F>(&mut self, key: ArtifactKey, build: F) -> ect_types::Result<Arc<T>>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> ect_types::Result<T>,
    {
        if let Some(found) = self.entries.get(&key) {
            self.stats.entry(key.kind).or_default().hits += 1;
            let typed = Arc::clone(found)
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("artifact {key} stored with a different type"));
            return Ok(typed);
        }
        let built = Arc::new(build()?);
        self.stats.entry(key.kind).or_default().misses += 1;
        self.entries
            .insert(key, Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
        Ok(built)
    }

    /// The artifact under `key`, if present — a read-only peek that does
    /// not touch the hit/miss counters.
    ///
    /// # Panics
    ///
    /// Panics when the stored artifact has a different concrete type than
    /// `T` (same contract as [`ArtifactStore::get_or_insert`]).
    pub fn get<T: Any + Send + Sync>(&self, key: &ArtifactKey) -> Option<Arc<T>> {
        self.entries.get(key).map(|found| {
            Arc::clone(found)
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("artifact {key} stored with a different type"))
        })
    }

    /// `true` when an artifact is stored under `key`.
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters of one artifact kind (zero when never touched).
    pub fn kind_stats(&self, kind: &str) -> KindStats {
        self.stats.get(kind).copied().unwrap_or_default()
    }

    /// Total lookups served from the store across all kinds.
    pub fn hits(&self) -> usize {
        self.stats.values().map(|s| s.hits).sum()
    }

    /// Total builder invocations across all kinds — the computation budget
    /// actually spent.
    pub fn misses(&self) -> usize {
        self.stats.values().map(|s| s.misses).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keys_are_stable_and_input_sensitive() {
        let a = ArtifactKey::of("world", &(7u64, "baseline"));
        let b = ArtifactKey::of("world", &(7u64, "baseline"));
        assert_eq!(a, b);
        assert_eq!(a.display(), b.to_string());
        // Any input change moves the digest; a kind change moves the key.
        assert_ne!(a, ArtifactKey::of("world", &(8u64, "baseline")));
        assert_ne!(a, ArtifactKey::of("world", &(7u64, "heatwave")));
        assert_ne!(a, ArtifactKey::of("system", &(7u64, "baseline")));
    }

    #[test]
    fn store_builds_once_and_shares_the_arc() {
        let mut store = ArtifactStore::new();
        let key = ArtifactKey::of("demo", &42u64);
        let mut builds = 0usize;
        let first: Arc<Vec<u64>> = store
            .get_or_insert(key, || {
                builds += 1;
                Ok(vec![1, 2, 3])
            })
            .unwrap();
        let second: Arc<Vec<u64>> = store
            .get_or_insert(key, || {
                builds += 1;
                Ok(vec![9, 9, 9])
            })
            .unwrap();
        assert_eq!(builds, 1, "second lookup must not rebuild");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.kind_stats("demo"), KindStats { hits: 1, misses: 1 });
        assert_eq!(store.len(), 1);
        assert!(store.contains(&key));
        assert!(!store.is_empty());

        // get() peeks without counting.
        let peeked: Arc<Vec<u64>> = store.get(&key).expect("stored");
        assert!(Arc::ptr_eq(&peeked, &first));
        assert_eq!(store.kind_stats("demo"), KindStats { hits: 1, misses: 1 });
        assert!(store
            .get::<Vec<u64>>(&ArtifactKey::of("demo", &43u64))
            .is_none());
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let mut store = ArtifactStore::new();
        let key = ArtifactKey::of("flaky", &1u8);
        let err: ect_types::Result<Arc<u32>> = store.get_or_insert(key, || {
            Err(ect_types::EctError::InvalidConfig("boom".into()))
        });
        assert!(err.is_err());
        assert!(!store.contains(&key));
        // The next attempt runs the builder again and succeeds.
        let ok: Arc<u32> = store.get_or_insert(key, || Ok(5)).unwrap();
        assert_eq!(*ok, 5);
        assert_eq!(
            store.kind_stats("flaky"),
            KindStats { hits: 0, misses: 1 },
            "failures are not counted as misses"
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let mut store = ArtifactStore::new();
        let key = ArtifactKey::of("demo", &0u8);
        let _: Arc<u32> = store.get_or_insert(key, || Ok(1)).unwrap();
        let _: Arc<String> = store.get_or_insert(key, || Ok("no".into())).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite contract: the key hash is a pure function of the
        /// serialised inputs — identical inputs collide, any change to any
        /// field separates the keys.
        #[test]
        fn key_hash_tracks_input_identity(
            seed_a in 0u64..1_000_000,
            seed_b in 0u64..1_000_000,
            name_a in 0usize..6,
            name_b in 0usize..6,
            scale in 0usize..4,
        ) {
            const NAMES: [&str; 6] =
                ["", "baseline", "heatwave", "winter-storm", "ev-surge", "outage"];
            let a = ArtifactKey::of("probe", &(seed_a, NAMES[name_a], scale));
            let a_again = ArtifactKey::of("probe", &(seed_a, NAMES[name_a], scale));
            prop_assert_eq!(a, a_again, "identical inputs must share one key");
            let b = ArtifactKey::of("probe", &(seed_b, NAMES[name_b], scale));
            if seed_a == seed_b && name_a == name_b {
                prop_assert_eq!(a, b);
            } else {
                prop_assert_ne!(a, b);
            }
        }
    }
}
