//! Pricing stage of the pipeline: training engines and building Table II.

use crate::system::{EctHubSystem, PricingMethod};
use ect_price::baselines::UpliftBaseline;
use ect_price::engine::{BaselineEngine, EctPriceEngine, NeverDiscount, PricingEngine};
use ect_price::eval::{evaluate_engine, oracle_evaluation, PricingEvaluation};
use ect_price::features::PricingDataset;
use ect_price::model::EctPriceModel;
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// Trains the engine for one pricing method.
///
/// # Errors
///
/// Propagates training failures (insufficient data, divergence).
pub fn train_engine(
    system: &EctHubSystem,
    method: PricingMethod,
    train_data: &PricingDataset,
    rng: &mut EctRng,
) -> ect_types::Result<Box<dyn PricingEngine>> {
    let space = system.feature_space();
    match method {
        PricingMethod::EctPrice => {
            let config = system.config().ect_price.clone();
            let mut model = EctPriceModel::new(space, &config, rng);
            model.train(train_data, &config, rng)?;
            Ok(Box::new(EctPriceEngine::new(model)))
        }
        PricingMethod::NoDiscount => Ok(Box::new(NeverDiscount)),
        _ => {
            let kind = method
                .baseline_kind()
                .expect("non-baseline methods handled above");
            let baseline =
                UpliftBaseline::train(kind, &space, train_data, &system.config().baseline, rng)?;
            Ok(Box::new(BaselineEngine::new(baseline)))
        }
    }
}

/// One method's row-group of Table II: an evaluation per discount level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodPricingResults {
    /// Method identity.
    pub method: String,
    /// One evaluation per requested discount level.
    pub per_discount: Vec<PricingEvaluation>,
}

/// The full Table II reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PricingTable {
    /// Discount levels evaluated (the paper sweeps 10 %–60 %).
    pub discounts: Vec<f64>,
    /// Per-method results, in the paper's row order plus the oracle bound.
    pub methods: Vec<MethodPricingResults>,
}

impl PricingTable {
    /// Renders the table in the paper's layout (rows = methods, columns =
    /// treated-counts per stratum and reward, grouped by discount).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        for (d_idx, discount) in self.discounts.iter().enumerate() {
            out.push_str(&format!(
                "\n**{:.0}% Discount**\n\n| Method | None | Incentive | Always | Reward |\n|---|---|---|---|---|\n",
                discount * 100.0
            ));
            for m in &self.methods {
                let e = &m.per_discount[d_idx];
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {:.0} |\n",
                    m.method, e.treated.none, e.treated.incentive, e.treated.always, e.reward
                ));
            }
        }
        out
    }

    /// The evaluation of a given method at a given discount, if present.
    pub fn result(&self, method: &str, discount: f64) -> Option<&PricingEvaluation> {
        let d_idx = self
            .discounts
            .iter()
            .position(|&d| (d - discount).abs() < 1e-9)?;
        self.methods
            .iter()
            .find(|m| m.method == method)
            .map(|m| &m.per_discount[d_idx])
    }
}

/// Trains all paper methods once and evaluates them across discount levels
/// (Table II). The oracle row is appended as the attainable upper bound.
///
/// Discount-dependent decisions are re-evaluated per level with the same
/// trained models, mirroring the paper's protocol of training per discount
/// with shared data.
///
/// # Errors
///
/// Propagates training failures.
#[deprecated(
    since = "0.2.0",
    note = "route through the unified experiment API: `Session::pricing_table` \
            (crate::session) memoises the trained table per (config, discounts)"
)]
pub fn pricing_table(
    system: &EctHubSystem,
    train_data: &PricingDataset,
    test_data: &PricingDataset,
    discounts: &[f64],
    rng: &mut EctRng,
) -> ect_types::Result<PricingTable> {
    pricing_table_impl(system, train_data, test_data, discounts, rng)
}

/// The Table II engine behind [`pricing_table`] and
/// [`Session::pricing_table`](crate::session::Session::pricing_table).
pub(crate) fn pricing_table_impl(
    system: &EctHubSystem,
    train_data: &PricingDataset,
    test_data: &PricingDataset,
    discounts: &[f64],
    rng: &mut EctRng,
) -> ect_types::Result<PricingTable> {
    let mut methods = Vec::new();
    for method in PricingMethod::PAPER_SET {
        let engine = train_engine(system, method, train_data, rng)?;
        let per_discount = discounts
            .iter()
            .map(|&c| evaluate_engine(engine.as_ref(), test_data, c))
            .collect();
        methods.push(MethodPricingResults {
            method: method.label().to_string(),
            per_discount,
        });
    }
    methods.push(MethodPricingResults {
        method: "Oracle".to_string(),
        per_discount: discounts
            .iter()
            .map(|&c| oracle_evaluation(test_data, c))
            .collect(),
    });
    Ok(PricingTable {
        discounts: discounts.to_vec(),
        methods,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    #[test]
    fn engines_train_for_every_method() {
        let system = EctHubSystem::new(SystemConfig::miniature()).unwrap();
        let (train, _) = system.pricing_datasets();
        let mut rng = EctRng::seed_from(1);
        for method in [
            PricingMethod::EctPrice,
            PricingMethod::OutcomeRegression,
            PricingMethod::NoDiscount,
        ] {
            let engine = train_engine(&system, method, &train, &mut rng).unwrap();
            // Engines are pure: same query twice gives the same answer.
            assert_eq!(engine.decide(0, 20, 0.2), engine.decide(0, 20, 0.2));
        }
    }

    #[test]
    #[allow(deprecated)] // the legacy shim must stay green
    fn table_contains_all_methods_and_oracle() {
        let system = EctHubSystem::new(SystemConfig::miniature()).unwrap();
        let (train, test) = system.pricing_datasets();
        let mut rng = EctRng::seed_from(2);
        let table = pricing_table(&system, &train, &test, &[0.1, 0.3], &mut rng).unwrap();
        assert_eq!(table.methods.len(), 5);
        assert_eq!(table.methods[4].method, "Oracle");
        let md = table.to_markdown();
        assert!(md.contains("10% Discount"));
        assert!(md.contains("| Ours |"));
        // Lookup helper.
        assert!(table.result("Ours", 0.1).is_some());
        assert!(table.result("Ours", 0.5).is_none());
        assert!(table.result("Nope", 0.1).is_none());
    }

    #[test]
    #[allow(deprecated)] // the legacy shim must stay green
    fn oracle_reward_upper_bounds_all_methods() {
        let system = EctHubSystem::new(SystemConfig::miniature()).unwrap();
        let (train, test) = system.pricing_datasets();
        let mut rng = EctRng::seed_from(3);
        let table = pricing_table(&system, &train, &test, &[0.2], &mut rng).unwrap();
        let oracle = table.result("Oracle", 0.2).unwrap().reward;
        for m in &table.methods {
            assert!(
                m.per_discount[0].reward <= oracle + 1e-9,
                "{} beat the oracle",
                m.method
            );
        }
    }
}
