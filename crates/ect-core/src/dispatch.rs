//! Work-stealing job dispatch for the fan-out stages.
//!
//! The historical dispatch split the job list into one static chunk per
//! worker; a straggler job (a heterogeneous scenario lane, an uneven hub
//! chunk) then serialised its whole chunk's tail while other workers sat
//! idle. [`run_indexed`] replaces that with work-stealing over the
//! crossbeam deque surface: all jobs start in a shared
//! [`crossbeam::deque::Injector`], each worker drains batches into its own
//! [`crossbeam::deque::Worker`] queue, and an idle worker steals from its
//! peers before giving up.
//!
//! Determinism: job `i`'s result lands in slot `i` of a preallocated
//! results slab, so the returned vector is in job order regardless of
//! which worker ran what and when — the fleet/scenario equivalence suites
//! pin that the output is bit-identical across thread counts.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// Pulls the next task: local queue first, then a batch from the global
/// injector, then stealing from peers. Bumps `steals` when the task came
/// from a peer's queue (telemetry: `dispatch.steals`).
fn find_task<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    me: usize,
    steals: &mut u64,
) -> Option<T> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    loop {
        let mut retry = false;
        for (peer, stealer) in stealers.iter().enumerate() {
            if peer == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(task) => {
                    *steals += 1;
                    return Some(task);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Runs every job across `threads` work-stealing workers (0 = one worker
/// per job) and returns the results **in job order**.
///
/// Each job runs exactly once; its result is written into the slab slot of
/// its index, so the output order is independent of scheduling. On error
/// the dispatch aborts outstanding work and returns the error of the
/// lowest-indexed failing job among those that ran.
///
/// # Errors
///
/// Returns the lowest-indexed job error encountered.
pub fn run_indexed<J, R, F>(jobs: Vec<J>, threads: usize, run: F) -> ect_types::Result<Vec<R>>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> ect_types::Result<R> + Sync,
{
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let workers = if threads == 0 {
        jobs.len()
    } else {
        threads.min(jobs.len()).max(1)
    };
    if workers == 1 {
        // Single worker: run inline, no queues, first error wins (it is
        // also the lowest-indexed one).
        ect_obs::counter_add("dispatch.jobs", jobs.len() as u64);
        return jobs
            .into_iter()
            .enumerate()
            .map(|(idx, job)| run(idx, job))
            .collect();
    }

    let n = jobs.len();
    let injector = Injector::new();
    for task in jobs.into_iter().enumerate() {
        injector.push(task);
    }
    let locals: Vec<Worker<(usize, J)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, J)>> = locals.iter().map(Worker::stealer).collect();
    // One uncontended mutex per slot (rather than `OnceLock`) so results
    // only need `Send`, not `Sync` — jobs may carry `Box<dyn Trait>` state.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let first_error: Mutex<Option<(usize, ect_types::EctError)>> = Mutex::new(None);
    let abort = AtomicBool::new(false);

    crossbeam::thread::scope(|scope| {
        for (me, local) in locals.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let first_error = &first_error;
            let abort = &abort;
            let run = &run;
            scope.spawn(move |_| {
                let mut my_jobs = 0u64;
                let mut my_steals = 0u64;
                while !abort.load(Ordering::Relaxed) {
                    let Some((idx, job)) =
                        find_task(&local, injector, stealers, me, &mut my_steals)
                    else {
                        break;
                    };
                    my_jobs += 1;
                    match run(idx, job) {
                        Ok(result) => {
                            let previous = slots[idx].lock().replace(result);
                            debug_assert!(previous.is_none(), "job {idx} ran twice");
                        }
                        Err(e) => {
                            let mut guard = first_error.lock();
                            if guard.as_ref().is_none_or(|(prev, _)| idx < *prev) {
                                *guard = Some((idx, e));
                            }
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                // One flush per worker, off the job path.
                if ect_obs::enabled() {
                    ect_obs::counter_add("dispatch.jobs", my_jobs);
                    ect_obs::counter_add("dispatch.steals", my_steals);
                    ect_obs::histogram_record("dispatch.jobs_per_worker", my_jobs);
                }
            });
        }
    })
    .expect("dispatch worker panicked");

    if let Some((_, e)) = first_error.into_inner() {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every job ran to completion without error")
        })
        .collect())
}

/// Shared scheduler state of [`run_dag`], guarded by one `std` mutex (the
/// vendored `parking_lot` has no condvar; waiters need `std::sync::Condvar`).
struct DagState<J> {
    /// Job payloads not yet started (taken when a job is claimed).
    pending: Vec<Option<J>>,
    /// Unmet dependency count per job.
    remaining: Vec<usize>,
    /// Ready, unclaimed jobs — a `BTreeSet` so claims drain
    /// lowest-index-first (the serial registry order) and scheduling stays
    /// reproducible.
    ready: std::collections::BTreeSet<usize>,
    /// Claimed jobs currently running.
    inflight: usize,
    /// An error occurred: claim nothing more.
    abort: bool,
}

/// Runs a dependency DAG of jobs across `threads` workers (0 = one worker
/// per job) and returns the results **in job order**.
///
/// `deps[i]` lists the jobs that must complete before job `i` may start;
/// every listed index must be `< i` (dependencies point at earlier jobs, so
/// plain index order is a valid serial schedule and the DAG is acyclic by
/// construction). Independent jobs run concurrently; a job becomes ready
/// the moment its last dependency finishes, so the critical path — not the
/// serial sum — bounds the wall time.
///
/// Determinism: like [`run_indexed`], job `i`'s result lands in slot `i`,
/// so the output is independent of scheduling; with one worker the jobs run
/// exactly in index order.
///
/// # Errors
///
/// Returns the lowest-indexed job error among those that ran; after an
/// error no new jobs start (already-running jobs finish).
///
/// # Panics
///
/// Panics when `deps` and `jobs` disagree in length or a dependency does
/// not point at an earlier job.
pub fn run_dag<J, R, F>(
    jobs: Vec<J>,
    deps: Vec<Vec<usize>>,
    threads: usize,
    run: F,
) -> ect_types::Result<Vec<R>>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> ect_types::Result<R> + Sync,
{
    let n = jobs.len();
    assert_eq!(deps.len(), n, "one dependency list per job");
    for (idx, dep_list) in deps.iter().enumerate() {
        for &dep in dep_list {
            assert!(
                dep < idx,
                "job {idx} depends on {dep}, which is not an earlier job"
            );
        }
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = if threads == 0 {
        n
    } else {
        threads.min(n).max(1)
    };
    if workers == 1 {
        // Index order satisfies every dependency; first error wins and is
        // the lowest-indexed one.
        let wall = ect_obs::enabled().then(std::time::Instant::now);
        let mut busy_us = 0u64;
        let results: ect_types::Result<Vec<R>> = jobs
            .into_iter()
            .enumerate()
            .map(|(idx, job)| {
                let span = ect_obs::span("run_dag.job").field_with("job", || idx.to_string());
                let t0 = span.is_recording().then(std::time::Instant::now);
                let outcome = run(idx, job);
                if let Some(t0) = t0 {
                    busy_us += t0.elapsed().as_micros() as u64;
                }
                outcome
            })
            .collect();
        if let Some(wall) = wall {
            ect_obs::counter_add("run_dag.busy_us", busy_us);
            ect_obs::counter_add(
                "run_dag.capacity_us",
                (wall.elapsed().as_micros() as u64).max(1),
            );
        }
        return results;
    }

    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut remaining = vec![0usize; n];
    for (idx, dep_list) in deps.iter().enumerate() {
        remaining[idx] = dep_list.len();
        for &dep in dep_list {
            dependents[dep].push(idx);
        }
    }
    let ready: std::collections::BTreeSet<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let state = std::sync::Mutex::new(DagState {
        pending: jobs.into_iter().map(Some).collect(),
        remaining,
        ready,
        inflight: 0,
        abort: false,
    });
    let wakeup = std::sync::Condvar::new();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let first_error: Mutex<Option<(usize, ect_types::EctError)>> = Mutex::new(None);
    // Worker busy time vs. wall capacity: the utilisation numerator and
    // denominator of the `dag_worker_utilization` bench row. Idle time is
    // the gap between the two (workers parked waiting for dependencies).
    let wall = ect_obs::enabled().then(std::time::Instant::now);
    let busy_us = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let busy_us = &busy_us;
                let mut my_busy_us = 0u64;
                loop {
                    let claimed = {
                        let mut guard = state.lock().expect("dag state lock");
                        loop {
                            if guard.abort {
                                break None;
                            }
                            if let Some(&idx) = guard.ready.iter().next() {
                                guard.ready.remove(&idx);
                                guard.inflight += 1;
                                break Some((
                                    idx,
                                    guard.pending[idx].take().expect("job queued once"),
                                ));
                            }
                            if guard.inflight == 0 {
                                // Nothing ready, nothing running: all done
                                // (the DAG is acyclic, so no job can be
                                // stranded).
                                break None;
                            }
                            guard = wakeup.wait(guard).expect("dag state lock");
                        }
                    };
                    let Some((idx, job)) = claimed else { break };
                    let outcome = {
                        let span =
                            ect_obs::span("run_dag.job").field_with("job", || idx.to_string());
                        let t0 = span.is_recording().then(std::time::Instant::now);
                        let outcome = run(idx, job);
                        if let Some(t0) = t0 {
                            my_busy_us += t0.elapsed().as_micros() as u64;
                        }
                        outcome
                    };
                    let mut guard = state.lock().expect("dag state lock");
                    guard.inflight -= 1;
                    match outcome {
                        Ok(result) => {
                            let previous = slots[idx].lock().replace(result);
                            debug_assert!(previous.is_none(), "job {idx} ran twice");
                            for &dependent in &dependents[idx] {
                                guard.remaining[dependent] -= 1;
                                if guard.remaining[dependent] == 0 {
                                    guard.ready.insert(dependent);
                                }
                            }
                        }
                        Err(e) => {
                            let mut err = first_error.lock();
                            if err.as_ref().is_none_or(|(prev, _)| idx < *prev) {
                                *err = Some((idx, e));
                            }
                            guard.abort = true;
                        }
                    }
                    drop(guard);
                    wakeup.notify_all();
                }
                if my_busy_us > 0 {
                    busy_us.fetch_add(my_busy_us, Ordering::Relaxed);
                }
            });
        }
    });

    if let Some(wall) = wall {
        ect_obs::counter_add("run_dag.busy_us", busy_us.load(Ordering::Relaxed));
        ect_obs::counter_add(
            "run_dag.capacity_us",
            (wall.elapsed().as_micros() as u64 * workers as u64).max(1),
        );
    }

    if let Some((_, e)) = first_error.into_inner() {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every job ran to completion without error")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_job_order_for_any_thread_count() {
        let jobs: Vec<usize> = (0..37).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let results = run_indexed(jobs.clone(), threads, |idx, job| {
                assert_eq!(idx, job);
                Ok(job * job)
            })
            .unwrap();
            let expected: Vec<usize> = jobs.iter().map(|j| j * j).collect();
            assert_eq!(results, expected, "threads {threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = run_indexed((0..100).collect::<Vec<usize>>(), 4, |_, job| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(job)
        })
        .unwrap();
        assert_eq!(counter.into_inner(), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn empty_job_lists_are_empty() {
        let results = run_indexed(Vec::<usize>::new(), 4, |_, job| Ok(job)).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn the_lowest_indexed_error_wins_sequentially() {
        // Single worker: deterministic first-error semantics.
        let err = run_indexed((0..10).collect::<Vec<usize>>(), 1, |idx, _| {
            if idx >= 3 {
                Err(ect_types::EctError::InvalidConfig(format!("job {idx}")))
            } else {
                Ok(idx)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("job 3"), "{err}");
    }

    #[test]
    fn parallel_errors_abort_and_surface() {
        // All jobs fail: whichever error surfaces must be a real job error,
        // and the dispatch must not hang or panic.
        let err = run_indexed((0..32).collect::<Vec<usize>>(), 4, |idx, _| {
            Err::<usize, _>(ect_types::EctError::InvalidConfig(format!("job {idx}")))
        })
        .unwrap_err();
        assert!(err.to_string().contains("job "), "{err}");
    }

    #[test]
    fn dag_results_come_back_in_job_order_for_any_thread_count() {
        // A diamond over 8 jobs: 0 → {1..6} → 7.
        let deps: Vec<Vec<usize>> = (0..8)
            .map(|i| match i {
                0 => vec![],
                7 => (1..7).collect(),
                _ => vec![0],
            })
            .collect();
        for threads in [0, 1, 2, 3, 8] {
            let results = run_dag(
                (0..8).collect::<Vec<usize>>(),
                deps.clone(),
                threads,
                |idx, job| {
                    assert_eq!(idx, job);
                    Ok(job * 10)
                },
            )
            .unwrap();
            assert_eq!(
                results,
                (0..8).map(|j| j * 10).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn dag_dependencies_complete_before_dependents_start() {
        // Chain with a fan: 0 → 1 → {2, 3, 4}; each job records the done-set
        // it observed at start.
        let done = [false, false, false, false, false].map(Mutex::new);
        let deps = vec![vec![], vec![0], vec![1], vec![1], vec![1]];
        run_dag((0..5).collect::<Vec<usize>>(), deps, 4, |idx, _| {
            for (dep_idx, flag) in done.iter().enumerate() {
                let dep_done = *flag.lock();
                match (idx, dep_idx) {
                    (1, 0) => assert!(dep_done, "job 1 started before job 0 finished"),
                    (2..=4, 1) => assert!(dep_done, "job {idx} started before job 1 finished"),
                    _ => {}
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            *done[idx].lock() = true;
            Ok(())
        })
        .unwrap();
        assert!(done.iter().all(|f| *f.lock()), "every job ran");
    }

    #[test]
    fn dag_independent_jobs_overlap() {
        // 4 independent 20ms jobs on 4 workers: well under the 80ms serial
        // sum proves genuine overlap (generous bound for CI jitter).
        let t0 = std::time::Instant::now();
        run_dag(vec![(); 4], vec![vec![]; 4], 4, |_, ()| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            Ok(())
        })
        .unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(70),
            "independent jobs must not serialise ({:?})",
            t0.elapsed()
        );
    }

    #[test]
    fn dag_errors_surface_and_downstream_jobs_never_start() {
        let ran = AtomicUsize::new(0);
        let err = run_dag(
            (0..3).collect::<Vec<usize>>(),
            vec![vec![], vec![0], vec![1]],
            4,
            |idx, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                if idx == 1 {
                    Err(ect_types::EctError::InvalidConfig("job 1".into()))
                } else {
                    Ok(idx)
                }
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("job 1"), "{err}");
        assert_eq!(
            ran.into_inner(),
            2,
            "job 2 must not start after its dependency failed"
        );
    }

    #[test]
    fn dag_empty_and_serial_paths() {
        assert!(run_dag(Vec::<usize>::new(), Vec::new(), 4, |_, j| Ok(j))
            .unwrap()
            .is_empty());
        // Single worker runs in index order.
        let order = Mutex::new(Vec::new());
        run_dag(
            (0..6).collect::<Vec<usize>>(),
            vec![vec![]; 6],
            1,
            |idx, _| {
                order.lock().push(idx);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(*order.lock(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "not an earlier job")]
    fn dag_forward_dependencies_are_rejected() {
        let _ = run_dag(vec![(), ()], vec![vec![1], vec![]], 2, |_, ()| Ok(()));
    }

    #[test]
    fn uneven_job_durations_still_complete() {
        // Stragglers: a few long jobs mixed with many short ones must all
        // finish (the work-stealing motivation case).
        let results = run_indexed((0..64).collect::<Vec<u64>>(), 4, |_, job| {
            if job % 16 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Ok(job + 1)
        })
        .unwrap();
        assert_eq!(results, (1..=64).collect::<Vec<u64>>());
    }
}
