//! Work-stealing job dispatch for the fan-out stages.
//!
//! The historical dispatch split the job list into one static chunk per
//! worker; a straggler job (a heterogeneous scenario lane, an uneven hub
//! chunk) then serialised its whole chunk's tail while other workers sat
//! idle. [`run_indexed`] replaces that with work-stealing over the
//! crossbeam deque surface: all jobs start in a shared
//! [`crossbeam::deque::Injector`], each worker drains batches into its own
//! [`crossbeam::deque::Worker`] queue, and an idle worker steals from its
//! peers before giving up.
//!
//! Determinism: job `i`'s result lands in slot `i` of a preallocated
//! results slab, so the returned vector is in job order regardless of
//! which worker ran what and when — the fleet/scenario equivalence suites
//! pin that the output is bit-identical across thread counts.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// Pulls the next task: local queue first, then a batch from the global
/// injector, then stealing from peers.
fn find_task<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    me: usize,
) -> Option<T> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    loop {
        let mut retry = false;
        for (peer, stealer) in stealers.iter().enumerate() {
            if peer == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Runs every job across `threads` work-stealing workers (0 = one worker
/// per job) and returns the results **in job order**.
///
/// Each job runs exactly once; its result is written into the slab slot of
/// its index, so the output order is independent of scheduling. On error
/// the dispatch aborts outstanding work and returns the error of the
/// lowest-indexed failing job among those that ran.
///
/// # Errors
///
/// Returns the lowest-indexed job error encountered.
pub fn run_indexed<J, R, F>(jobs: Vec<J>, threads: usize, run: F) -> ect_types::Result<Vec<R>>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> ect_types::Result<R> + Sync,
{
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let workers = if threads == 0 {
        jobs.len()
    } else {
        threads.min(jobs.len()).max(1)
    };
    if workers == 1 {
        // Single worker: run inline, no queues, first error wins (it is
        // also the lowest-indexed one).
        return jobs
            .into_iter()
            .enumerate()
            .map(|(idx, job)| run(idx, job))
            .collect();
    }

    let n = jobs.len();
    let injector = Injector::new();
    for task in jobs.into_iter().enumerate() {
        injector.push(task);
    }
    let locals: Vec<Worker<(usize, J)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, J)>> = locals.iter().map(Worker::stealer).collect();
    // One uncontended mutex per slot (rather than `OnceLock`) so results
    // only need `Send`, not `Sync` — jobs may carry `Box<dyn Trait>` state.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let first_error: Mutex<Option<(usize, ect_types::EctError)>> = Mutex::new(None);
    let abort = AtomicBool::new(false);

    crossbeam::thread::scope(|scope| {
        for (me, local) in locals.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let first_error = &first_error;
            let abort = &abort;
            let run = &run;
            scope.spawn(move |_| {
                while !abort.load(Ordering::Relaxed) {
                    let Some((idx, job)) = find_task(&local, injector, stealers, me) else {
                        break;
                    };
                    match run(idx, job) {
                        Ok(result) => {
                            let previous = slots[idx].lock().replace(result);
                            debug_assert!(previous.is_none(), "job {idx} ran twice");
                        }
                        Err(e) => {
                            let mut guard = first_error.lock();
                            if guard.as_ref().is_none_or(|(prev, _)| idx < *prev) {
                                *guard = Some((idx, e));
                            }
                            abort.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    })
    .expect("dispatch worker panicked");

    if let Some((_, e)) = first_error.into_inner() {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every job ran to completion without error")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_job_order_for_any_thread_count() {
        let jobs: Vec<usize> = (0..37).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let results = run_indexed(jobs.clone(), threads, |idx, job| {
                assert_eq!(idx, job);
                Ok(job * job)
            })
            .unwrap();
            let expected: Vec<usize> = jobs.iter().map(|j| j * j).collect();
            assert_eq!(results, expected, "threads {threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = run_indexed((0..100).collect::<Vec<usize>>(), 4, |_, job| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(job)
        })
        .unwrap();
        assert_eq!(counter.into_inner(), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn empty_job_lists_are_empty() {
        let results = run_indexed(Vec::<usize>::new(), 4, |_, job| Ok(job)).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn the_lowest_indexed_error_wins_sequentially() {
        // Single worker: deterministic first-error semantics.
        let err = run_indexed((0..10).collect::<Vec<usize>>(), 1, |idx, _| {
            if idx >= 3 {
                Err(ect_types::EctError::InvalidConfig(format!("job {idx}")))
            } else {
                Ok(idx)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("job 3"), "{err}");
    }

    #[test]
    fn parallel_errors_abort_and_surface() {
        // All jobs fail: whichever error surfaces must be a real job error,
        // and the dispatch must not hang or panic.
        let err = run_indexed((0..32).collect::<Vec<usize>>(), 4, |idx, _| {
            Err::<usize, _>(ect_types::EctError::InvalidConfig(format!("job {idx}")))
        })
        .unwrap_err();
        assert!(err.to_string().contains("job "), "{err}");
    }

    #[test]
    fn uneven_job_durations_still_complete() {
        // Stragglers: a few long jobs mixed with many short ones must all
        // finish (the work-stealing motivation case).
        let results = run_indexed((0..64).collect::<Vec<u64>>(), 4, |_, job| {
            if job % 16 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Ok(job + 1)
        })
        .unwrap();
        assert_eq!(results, (1..=64).collect::<Vec<u64>>());
    }
}
