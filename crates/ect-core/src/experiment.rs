//! The experiment abstraction: named, registrable units of evaluation work.
//!
//! An [`Experiment`] is anything that can reproduce one of the paper's
//! tables/figures (or one of the repo's beyond-paper studies) inside a
//! [`Session`]: it has a stable id, knows which `results/*.json` artifacts
//! it writes, and returns a typed [`ExperimentOutput`] envelope — headline
//! metric, wall time, artifact paths — that the bench registry aggregates
//! into `results/BENCH_summary.json`.
//!
//! The concrete experiments live in the `ect-bench` crate (they own the
//! printing and JSON layout of each figure); this module defines the
//! contract so any layer — registry, CI smoke steps, downstream binaries —
//! can drive them uniformly through a session.

use crate::session::Session;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The typed result envelope of one experiment run.
///
/// The full figure/table payload lands in the experiment's `results/*.json`
/// files; the envelope carries the *summary* every harness layer needs —
/// it is exactly one row of `results/BENCH_summary.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutput {
    /// The experiment's registry id.
    pub id: String,
    /// Name of the headline metric.
    pub metric_name: String,
    /// Value of the headline metric.
    pub metric_value: f64,
    /// Wall-clock time of the run, seconds (stamped by [`run_timed`]).
    pub wall_time_s: f64,
    /// Paths of the JSON artifacts written, workspace-relative
    /// (`results/<stem>.json`).
    pub artifacts: Vec<String>,
}

impl ExperimentOutput {
    /// An envelope with the given identity and headline metric; wall time
    /// is stamped later by [`run_timed`], artifacts start empty.
    pub fn new(id: &str, metric_name: &str, metric_value: f64) -> Self {
        Self {
            id: id.to_string(),
            metric_name: metric_name.to_string(),
            metric_value,
            wall_time_s: 0.0,
            artifacts: Vec::new(),
        }
    }

    /// Records one written artifact stem as its workspace-relative path.
    #[must_use]
    pub fn with_artifact(mut self, stem: &str) -> Self {
        self.artifacts.push(format!("results/{stem}.json"));
        self
    }
}

/// One registrable unit of evaluation work.
///
/// Implementations translate the session's [`RunScale`] into their own
/// budgets, route all expensive intermediates through the session's
/// artifact store, print their paper-shaped terminal view and persist
/// their JSON — [`Experiment::run`] is the *whole* experiment, so a
/// registry lookup plus one call replaces what used to be a hand-rolled
/// binary.
///
/// `Send + Sync` because the registry scheduler fans experiments out
/// across worker threads; implementations are stateless descriptors (all
/// run state lives in the session), so the bound is free in practice.
///
/// [`RunScale`]: crate::session::RunScale
pub trait Experiment: Send + Sync {
    /// Stable registry id (also the CLI name: `run_all --only <id>`).
    fn id(&self) -> &'static str;

    /// One-line description for catalogs (`run_all --list`).
    fn description(&self) -> &'static str;

    /// File stems of the `results/*.json` artifacts this experiment
    /// writes. Must be unique across a registry.
    fn artifact_stems(&self) -> &'static [&'static str];

    /// Named artifact groups this experiment consumes but does not own —
    /// the edges of the registry's dependency DAG. The scheduler runs the
    /// *first* registered experiment declaring a stem as that group's
    /// provider; every later declarer waits for it (and for nothing else).
    /// The default — no stems — marks the experiment independent, free to
    /// run concurrently with everything.
    fn dependency_stems(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the experiment inside the session. Takes `&Session` — the
    /// session is internally synchronised, so the registry scheduler can
    /// run independent experiments concurrently over one shared session.
    ///
    /// # Errors
    ///
    /// Propagates configuration, training and evaluation failures.
    fn run(&self, session: &Session) -> ect_types::Result<ExperimentOutput>;
}

/// Runs an experiment and stamps its wall time into the envelope.
///
/// # Errors
///
/// Propagates [`Experiment::run`] failures.
pub fn run_timed(
    experiment: &dyn Experiment,
    session: &Session,
) -> ect_types::Result<ExperimentOutput> {
    let _span = ect_obs::span("experiment.run").field("id", experiment.id());
    let t0 = Instant::now();
    let mut output = experiment.run(session)?;
    output.wall_time_s = t0.elapsed().as_secs_f64();
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use crate::system::SystemConfig;

    struct Probe;

    impl Experiment for Probe {
        fn id(&self) -> &'static str {
            "probe"
        }
        fn description(&self) -> &'static str {
            "counts the session's stored artifacts"
        }
        fn artifact_stems(&self) -> &'static [&'static str] {
            &["probe"]
        }
        fn run(&self, session: &Session) -> ect_types::Result<ExperimentOutput> {
            let world = session.world()?;
            Ok(
                ExperimentOutput::new("probe", "hubs", world.num_hubs() as f64)
                    .with_artifact("probe"),
            )
        }
    }

    #[test]
    fn experiments_run_through_a_session_and_stamp_wall_time() {
        let mut config = SystemConfig::miniature();
        config.world.horizon_slots = 24 * 2;
        let session = SessionBuilder::new(config).build().unwrap();
        assert!(
            Probe.dependency_stems().is_empty(),
            "independent by default"
        );
        let output = run_timed(&Probe, &session).unwrap();
        assert_eq!(output.id, "probe");
        assert_eq!(output.metric_name, "hubs");
        assert_eq!(output.metric_value, 3.0);
        assert!(output.wall_time_s >= 0.0);
        assert_eq!(output.artifacts, vec!["results/probe.json".to_string()]);

        // The envelope round-trips for results/BENCH_summary.json.
        let json = serde_json::to_string(&output).unwrap();
        let back: ExperimentOutput = serde_json::from_str(&json).unwrap();
        assert_eq!(back, output);
    }
}
