//! Generalist orchestration: train one scenario-mixture policy, then score
//! its zero-shot generalisation against per-scenario specialists and the
//! rule-based schedulers.
//!
//! [`run_generalist`] is the operator-facing entry point:
//!
//! 1. split the stress library into training and held-out specs
//!    ([`ect_drl::generalist::train_holdout_split`]);
//! 2. score the held-out **baselines** ([`heldout_baselines`]): the
//!    per-scenario specialists that
//!    [`run_scenario_grid`](crate::scenario_grid::run_scenario_grid) trains
//!    inside each held-out world, plus the rule-based schedulers
//!    (NoBattery, GreedyPrice, TimeOfUse) — these are independent of any
//!    generalist choice, so ablation sweeps compute them **once** and share
//!    them across arms via [`run_generalist_against`];
//! 3. train a single shared policy over the training mixture — worlds are
//!    generated once per spec and re-sliced every episode through
//!    [`fleet_env_for_worlds`], with the [`ObsAugmentation`] scenario block
//!    telling the policy which world each lane runs;
//! 4. drop the generalist zero-shot into every held-out scenario and
//!    report the generalisation gap per scenario.
//!
//! Discounts are pinned to the never-discount schedule throughout, so every
//! number isolates *battery scheduling* quality under world shift rather
//! than pricing-policy differences.

use crate::scenario_grid::{scenario_grid_impl, NamedEngines};
use crate::scheduling::{run_hub_scheduler, OBS_WINDOW};
use crate::system::EctHubSystem;
use ect_data::dataset::WorldDataset;
use ect_data::scenario::ScenarioSpec;
use ect_drl::checkpoint::CheckpointMeta;
use ect_drl::generalist::{
    evaluate_generalist, train_generalist, train_holdout_split, GeneralistConfig, ScenarioMixture,
};
use ect_drl::heuristics::{GreedyPrice, NoBattery, Scheduler, TimeOfUse};
use ect_drl::ActorCritic;
use ect_env::env::ObsAugmentation;
use ect_env::fleet::fleet_env_for_worlds;
use ect_env::tariff::DiscountSchedule;
use ect_price::engine::NeverDiscount;
use ect_types::ids::HubId;
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// Seed-stream separator for the generalist trainer (decorrelated from the
/// per-hub specialist streams).
const GENERALIST_SEED_STREAM: u64 = 0x6E4E_7A11;

/// Seed-stream separator for zero-shot evaluation draws.
const GENERALIST_EVAL_STREAM: u64 = 0xE7A1_6E4E;

/// Knobs of [`run_generalist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneralistOptions {
    /// Observation augmentation for the generalist (specialists always use
    /// the plain Eq. 24 state).
    pub augmentation: ObsAugmentation,
    /// Mixture lanes per training episode (0 = one lane per hub).
    pub lanes: usize,
    /// Worker threads for the specialist grid (0 = one per job).
    pub threads: usize,
}

impl Default for GeneralistOptions {
    fn default() -> Self {
        Self {
            augmentation: ObsAugmentation::SCENARIO,
            lanes: 0,
            threads: 4,
        }
    }
}

/// Generalist-independent comparison anchors of one held-out world: the
/// specialists trained *inside* it and the rule-based schedulers. All
/// rewards are average daily rewards under the never-discount schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeldOutBaseline {
    /// Held-out scenario name.
    pub scenario: String,
    /// Mean reward of the specialists trained inside this world, one per
    /// hub (the `run_scenario_grid` cells).
    pub specialist: f64,
    /// Rule-based baselines, `(name, reward)` pairs.
    pub heuristics: Vec<(String, f64)>,
    /// The strongest rule-based baseline's reward.
    pub best_heuristic: f64,
}

/// One held-out scenario's generalisation scorecard. All rewards are
/// average daily rewards (the paper's Table III metric) under the
/// never-discount schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeldOutComparison {
    /// Held-out scenario name.
    pub scenario: String,
    /// Zero-shot generalist reward (never trained on this world).
    pub generalist: f64,
    /// Mean reward of the specialists trained *inside* this world, one per
    /// hub (the `run_scenario_grid` cells).
    pub specialist: f64,
    /// Generalisation gap `specialist − generalist` (smaller is better;
    /// negative means the generalist beat the specialists).
    pub gap: f64,
    /// Gap as a fraction of the specialist's magnitude.
    pub gap_fraction: f64,
    /// Rule-based baselines, `(name, reward)` pairs.
    pub heuristics: Vec<(String, f64)>,
    /// The strongest rule-based baseline's reward.
    pub best_heuristic: f64,
    /// `true` when the zero-shot generalist beats at least one baseline.
    pub beats_any_heuristic: bool,
}

/// The full generalisation report of one [`run_generalist`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralistReport {
    /// Observation augmentation the generalist trained with.
    pub augmentation: ObsAugmentation,
    /// Observation dimension of the generalist policy.
    pub obs_dim: usize,
    /// Mixture lanes per training episode.
    pub lanes: usize,
    /// Training episodes (each contributing `lanes` trajectories).
    pub episodes: usize,
    /// Master seed of the generalist trainer.
    pub seed: u64,
    /// Names of the training-mixture scenarios.
    pub train_scenarios: Vec<String>,
    /// Mean return over the last 10 % of training episodes.
    pub final_training_return: f64,
    /// Per-held-out-scenario comparisons, in split order.
    pub heldout: Vec<HeldOutComparison>,
}

impl GeneralistReport {
    /// Mean generalisation gap across the held-out scenarios.
    pub fn mean_gap(&self) -> f64 {
        if self.heldout.is_empty() {
            return f64::NAN;
        }
        self.heldout.iter().map(|h| h.gap).sum::<f64>() / self.heldout.len() as f64
    }
}

/// A trained generalist plus its scorecard.
///
/// Serialisable end to end (the policy's scratch caches are skipped), so
/// the whole outcome can spill to the persistent artifact cache and a warm
/// process skips the training run entirely.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralistOutcome {
    /// The generalisation report (serialisable).
    pub report: GeneralistReport,
    /// The trained shared policy.
    pub policy: ActorCritic,
}

impl GeneralistOutcome {
    /// Checkpoint metadata describing this policy's observation contract —
    /// hand it to [`ect_drl::checkpoint::save_checkpoint`] so deployments
    /// can refuse mismatched observation layouts.
    pub fn checkpoint_meta(&self) -> CheckpointMeta {
        CheckpointMeta {
            obs_dim: self.report.obs_dim,
            augmentation: self.report.augmentation,
            scenarios: self.report.train_scenarios.clone(),
            seed: self.report.seed,
        }
    }
}

fn no_discount_engines(_system: &EctHubSystem) -> ect_types::Result<NamedEngines> {
    Ok(vec![(
        "NoDiscount".into(),
        Box::new(NeverDiscount) as Box<dyn ect_price::engine::PricingEngine>,
    )])
}

/// Trains the per-scenario specialists (via the batched scenario grid) and
/// scores the rule-based schedulers on every held-out world.
///
/// This is the expensive half of a generalisation study and it does not
/// depend on the generalist at all — augmentation ablations call it once
/// and feed the result to several [`run_generalist_against`] arms.
///
/// # Errors
///
/// Propagates world-generation, training and evaluation failures.
pub fn heldout_baselines(
    system: &EctHubSystem,
    threads: usize,
) -> ect_types::Result<Vec<HeldOutBaseline>> {
    let horizon = system.world().horizon();
    let num_hubs = system.world().num_hubs() as usize;
    let (_, heldout_specs) = train_holdout_split(horizon);
    let grid = scenario_grid_impl(system, &heldout_specs, &no_discount_engines, threads)?;

    let mut baselines = Vec::with_capacity(heldout_specs.len());
    for (spec, grid_result) in heldout_specs.iter().zip(&grid) {
        let spec_system = system.with_scenario(spec.clone())?;
        let mut heuristics: Vec<(String, f64)> = Vec::new();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(NoBattery),
            Box::new(GreedyPrice::default_thresholds()),
            Box::new(TimeOfUse),
        ];
        for scheduler in &mut schedulers {
            let mut total = 0.0;
            for hub in 0..num_hubs {
                let cell = run_hub_scheduler(
                    &spec_system,
                    HubId::new(hub as u32),
                    &NeverDiscount,
                    scheduler.as_mut(),
                )?;
                total += cell.avg_daily_reward;
            }
            heuristics.push((scheduler.name().to_string(), total / num_hubs as f64));
        }
        let best_heuristic = heuristics
            .iter()
            .map(|(_, reward)| *reward)
            .fold(f64::NEG_INFINITY, f64::max);
        baselines.push(HeldOutBaseline {
            scenario: spec.name.clone(),
            specialist: grid_result.method_mean("NoDiscount"),
            heuristics,
            best_heuristic,
        });
    }
    Ok(baselines)
}

/// Trains the scenario-mixture generalist and scores zero-shot
/// generalisation against **precomputed** held-out baselines
/// ([`heldout_baselines`]). Use this directly when sweeping generalist
/// variants (augmentation on/off, lane counts) so the specialists and
/// heuristics are trained once, not per arm.
///
/// # Errors
///
/// Propagates training and evaluation failures, and rejects baselines that
/// do not cover the held-out split in order.
pub fn run_generalist_against(
    system: &EctHubSystem,
    options: &GeneralistOptions,
    baselines: &[HeldOutBaseline],
) -> ect_types::Result<GeneralistOutcome> {
    let horizon = system.world().horizon();
    let num_hubs = system.world().num_hubs() as usize;
    let lanes = if options.lanes == 0 {
        num_hubs
    } else {
        options.lanes
    };
    let (train_specs, heldout_specs) = train_holdout_split(horizon);
    if baselines.len() != heldout_specs.len()
        || baselines
            .iter()
            .zip(&heldout_specs)
            .any(|(baseline, spec)| baseline.scenario != spec.name)
    {
        return Err(ect_types::EctError::InvalidConfig(format!(
            "held-out baselines [{}] do not match the held-out split [{}]",
            baselines
                .iter()
                .map(|b| b.scenario.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            heldout_specs
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }

    // One world per spec (training ∪ held-out), generated once and re-sliced
    // every episode — the exogenous generators never rerun inside the loop.
    let world_config = system.config().world.clone();
    let mut worlds: Vec<WorldDataset> = Vec::with_capacity(train_specs.len() + heldout_specs.len());
    for spec in train_specs.iter().chain(&heldout_specs) {
        worlds.push(WorldDataset::generate_scenario(world_config.clone(), spec)?);
    }
    let world_for = |spec: &ScenarioSpec| -> ect_types::Result<&WorldDataset> {
        worlds.iter().find(|w| &w.scenario == spec).ok_or_else(|| {
            ect_types::EctError::InvalidConfig(format!(
                "scenario '{}' missing from the generated world cache",
                spec.name
            ))
        })
    };

    let augment = options.augmentation;
    let factory = |_episode: usize,
                   specs: &[&ScenarioSpec],
                   rngs: &mut [EctRng]|
     -> ect_types::Result<ect_env::vec_env::FleetEnv> {
        let mut lane_worlds = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            lane_worlds.push((world_for(spec)?, HubId::new((i % num_hubs) as u32)));
        }
        let discounts = vec![DiscountSchedule::none(horizon); specs.len()];
        fleet_env_for_worlds(
            &lane_worlds,
            0,
            horizon,
            &discounts,
            OBS_WINDOW,
            &augment,
            rngs,
        )
    };

    // Train the generalist on the scenario mixture.
    let mixture = ScenarioMixture::uniform(train_specs.clone())?;
    let config = GeneralistConfig {
        trainer: ect_drl::trainer::TrainerConfig {
            seed: system.config().seed ^ GENERALIST_SEED_STREAM,
            ..system.config().trainer.clone()
        },
        lanes,
    };
    let (policy, history) = train_generalist(&config, &mixture, factory)?;

    // Zero-shot evaluation against the precomputed anchors.
    let test_episodes = system.config().test_episodes;
    let eval_seed = config.trainer.seed ^ GENERALIST_EVAL_STREAM;
    let mut heldout = Vec::with_capacity(heldout_specs.len());
    for (spec, baseline) in heldout_specs.iter().zip(baselines) {
        let summary =
            evaluate_generalist(&policy, spec, factory, test_episodes, num_hubs, eval_seed)?;
        let generalist = summary.avg_daily_reward;
        let beats_any_heuristic = baseline
            .heuristics
            .iter()
            .any(|(_, reward)| generalist > *reward);
        let gap = baseline.specialist - generalist;
        heldout.push(HeldOutComparison {
            scenario: baseline.scenario.clone(),
            generalist,
            specialist: baseline.specialist,
            gap,
            gap_fraction: gap / baseline.specialist.abs().max(1e-9),
            heuristics: baseline.heuristics.clone(),
            best_heuristic: baseline.best_heuristic,
            beats_any_heuristic,
        });
    }

    let report = GeneralistReport {
        augmentation: augment,
        obs_dim: policy.state_dim(),
        lanes,
        episodes: config.trainer.episodes,
        seed: config.trainer.seed,
        train_scenarios: train_specs.iter().map(|s| s.name.clone()).collect(),
        final_training_return: history.recent_mean((history.episode_returns.len() / 10).max(1)),
        heldout,
    };
    Ok(GeneralistOutcome { report, policy })
}

/// Trains the scenario-mixture generalist and scores zero-shot
/// generalisation on the held-out stress worlds — the one-call convenience
/// over [`heldout_baselines`] + [`run_generalist_against`].
///
/// # Errors
///
/// Propagates world-generation, training and evaluation failures.
#[deprecated(
    since = "0.2.0",
    note = "route through the unified experiment API: `Session::generalist` \
            (crate::session) memoises the baselines and the trained policy"
)]
pub fn run_generalist(
    system: &EctHubSystem,
    options: &GeneralistOptions,
) -> ect_types::Result<GeneralistOutcome> {
    let baselines = heldout_baselines(system, options.threads)?;
    run_generalist_against(system, options, &baselines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use ect_data::scenario::SCENARIO_FEATURE_DIM;
    use ect_drl::generalist::HELDOUT_SCENARIOS;

    fn tiny_system() -> EctHubSystem {
        let mut config = SystemConfig::miniature();
        config.world.num_hubs = 2;
        config.world.horizon_slots = 24 * 4;
        config.trainer.episodes = 2;
        config.test_episodes = 1;
        EctHubSystem::new(config).unwrap()
    }

    #[test]
    #[allow(deprecated)] // the legacy shim must stay green
    fn generalist_report_covers_every_heldout_scenario() {
        let system = tiny_system();
        let outcome = run_generalist(&system, &GeneralistOptions::default()).unwrap();
        let report = &outcome.report;
        assert_eq!(report.heldout.len(), HELDOUT_SCENARIOS.len());
        assert_eq!(
            report.obs_dim,
            5 * OBS_WINDOW + 1 + SCENARIO_FEATURE_DIM,
            "scenario block plumbed through obs_dim"
        );
        assert_eq!(outcome.policy.state_dim(), report.obs_dim);
        for (comparison, name) in report.heldout.iter().zip(HELDOUT_SCENARIOS) {
            assert_eq!(comparison.scenario, name);
            assert!(comparison.generalist.is_finite());
            assert!(comparison.specialist.is_finite());
            assert!(
                (comparison.gap - (comparison.specialist - comparison.generalist)).abs() < 1e-12
            );
            assert_eq!(comparison.heuristics.len(), 3);
            assert!(comparison.best_heuristic.is_finite());
        }
        assert!(report.mean_gap().is_finite());
        assert!(report.train_scenarios.iter().any(|name| name == "baseline"));

        // The checkpoint metadata describes the trained contract.
        let meta = outcome.checkpoint_meta();
        assert_eq!(meta.obs_dim, report.obs_dim);
        assert_eq!(meta.augmentation, ObsAugmentation::SCENARIO);
        assert_eq!(meta.scenarios, report.train_scenarios);

        // The report serialises for results/generalization.json.
        let json = serde_json::to_string(report).unwrap();
        let back: GeneralistReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.heldout.len(), report.heldout.len());
    }

    #[test]
    fn precomputed_baselines_are_shared_across_arms() {
        // The ablation path: score the baselines once, run two generalist
        // arms against them, and the anchors must be identical objects.
        let system = tiny_system();
        let baselines = heldout_baselines(&system, 2).unwrap();
        assert_eq!(baselines.len(), HELDOUT_SCENARIOS.len());

        let conditioned = run_generalist_against(
            &system,
            &GeneralistOptions {
                augmentation: ObsAugmentation::SCENARIO,
                lanes: 0,
                threads: 2,
            },
            &baselines,
        )
        .unwrap();
        let blind = run_generalist_against(
            &system,
            &GeneralistOptions {
                augmentation: ObsAugmentation::NONE,
                lanes: 3,
                threads: 2,
            },
            &baselines,
        )
        .unwrap();
        assert_eq!(
            conditioned.report.obs_dim,
            5 * OBS_WINDOW + 1 + SCENARIO_FEATURE_DIM
        );
        assert_eq!(blind.report.obs_dim, 5 * OBS_WINDOW + 1);
        assert_eq!(blind.report.lanes, 3);
        for (a, b) in conditioned.report.heldout.iter().zip(&blind.report.heldout) {
            assert_eq!(a.specialist.to_bits(), b.specialist.to_bits());
            assert_eq!(a.best_heuristic.to_bits(), b.best_heuristic.to_bits());
        }

        // Mismatched baselines are refused.
        let mut wrong = baselines.clone();
        wrong[0].scenario = "no-such-scenario".into();
        assert!(run_generalist_against(&system, &GeneralistOptions::default(), &wrong).is_err());
        assert!(
            run_generalist_against(&system, &GeneralistOptions::default(), &baselines[..1])
                .is_err()
        );
    }
}
