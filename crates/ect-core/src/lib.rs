//! ECT-Hub: the operator-facing API of the base-station-centric
//! energy-communication-transportation hub.
//!
//! This crate ties the whole reproduction together: generate a synthetic
//! world ([`ect_data`]), train pricing engines (ECT-Price and the OR/IPS/DR
//! baselines, [`ect_price`]), schedule batteries with PPO ([`ect_drl`]) on
//! the hub simulator ([`ect_env`]), and assemble the paper's evaluation
//! artifacts (Table II, Table III, the Fig. 11–13 series).
//!
//! # Quick start
//!
//! ```
//! use ect_core::prelude::*;
//!
//! // A miniature world: 3 hubs, short histories, tiny training budgets.
//! let system = EctHubSystem::new(SystemConfig::miniature())?;
//! let (train, test) = system.pricing_datasets();
//!
//! // Train the paper's pricing method and score it against the oracle.
//! let mut rng = EctRng::seed_from(7);
//! let engine = train_engine(&system, PricingMethod::EctPrice, &train, &mut rng)?;
//! let eval = evaluate_engine(engine.as_ref(), &test, 0.2);
//! assert!(eval.reward > 0.0);
//! # Ok::<(), ect_types::EctError>(())
//! ```
//!
//! The [`prelude`] re-exports the types most applications need.

pub mod generalist;
pub mod pricing;
pub mod report;
pub mod scenario_grid;
pub mod scheduling;
pub mod severity;
pub mod system;

pub use generalist::{
    heldout_baselines, run_generalist, run_generalist_against, GeneralistOptions,
    GeneralistOutcome, GeneralistReport, HeldOutBaseline, HeldOutComparison,
};
pub use pricing::{pricing_table, train_engine, MethodPricingResults, PricingTable};
pub use report::FleetReport;
pub use scenario_grid::{
    run_scenario_grid, scenario_stress, ScenarioGridResult, ScenarioHubStress,
};
pub use scheduling::{
    run_fleet, run_hub_method, run_hub_scheduler, run_hubs_method_batched, schedule_for_hub,
    HubExperimentResult, OBS_WINDOW,
};
pub use severity::{
    run_severity_sweep, SeverityCurve, SeverityOptions, SeverityOutcome, SeverityPoint,
    SeverityReport,
};
pub use system::{EctHubSystem, PricingMethod, SystemConfig};

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::generalist::{
        heldout_baselines, run_generalist, run_generalist_against, GeneralistOptions,
        GeneralistOutcome, GeneralistReport, HeldOutBaseline, HeldOutComparison,
    };
    pub use crate::pricing::{pricing_table, train_engine, PricingTable};
    pub use crate::report::FleetReport;
    pub use crate::scenario_grid::{
        run_scenario_grid, scenario_stress, ScenarioGridResult, ScenarioHubStress,
    };
    pub use crate::scheduling::{
        run_fleet, run_hub_method, run_hub_scheduler, run_hubs_method_batched, schedule_for_hub,
        HubExperimentResult,
    };
    pub use crate::severity::{
        run_severity_sweep, SeverityCurve, SeverityOptions, SeverityOutcome, SeverityPoint,
        SeverityReport,
    };
    pub use crate::system::{EctHubSystem, PricingMethod, SystemConfig};
    pub use ect_data::charging::Stratum;
    pub use ect_data::dataset::{HubSiting, WorldConfig, WorldDataset};
    pub use ect_data::scenario::randomized::{
        distribution_by_name, distribution_library, ParamRange, ScenarioDistribution, StressAxis,
        DISTRIBUTION_NAMES,
    };
    pub use ect_data::scenario::{
        scenario_by_name, scenario_library, ScenarioModifier, ScenarioSpec, Signal, SlotWindow,
        SCENARIO_NAMES,
    };
    pub use ect_drl::generalist::{
        train_holdout_split, ScenarioMixture, HELDOUT_SCENARIOS, TRAIN_SCENARIOS,
    };
    pub use ect_drl::heuristics::{DrlScheduler, GreedyPrice, NoBattery, Scheduler, TimeOfUse};
    pub use ect_drl::scenario_source::{ScenarioSource, WorldCache};
    pub use ect_drl::trainer::TrainerConfig;
    pub use ect_env::battery::BpAction;
    pub use ect_env::env::{HubEnv, ObsAugmentation};
    pub use ect_env::hub::HubConfig;
    pub use ect_env::tariff::DiscountSchedule;
    pub use ect_price::engine::PricingEngine;
    pub use ect_price::eval::evaluate_engine;
    pub use ect_types::ids::{HubId, StationId};
    pub use ect_types::rng::EctRng;
    pub use ect_types::time::SlotIndex;
    pub use ect_types::units::{DollarsPerKwh, KiloWatt, KiloWattHour, Money};
}
