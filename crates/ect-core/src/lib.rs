//! ECT-Hub: the operator-facing API of the base-station-centric
//! energy-communication-transportation hub.
//!
//! This crate ties the whole reproduction together: generate a synthetic
//! world ([`ect_data`]), train pricing engines (ECT-Price and the OR/IPS/DR
//! baselines, [`ect_price`]), schedule batteries with PPO ([`ect_drl`]) on
//! the hub simulator ([`ect_env`]), and assemble the paper's evaluation
//! artifacts (Table II, Table III, the Fig. 11–13 series) plus the repo's
//! beyond-paper studies (scenario grids, generalist training, severity
//! sweeps).
//!
//! # Quick start
//!
//! The unified entry point is a [`Session`]: a builder-configured handle
//! owning an [`ArtifactStore`] that memoises every expensive intermediate
//! (worlds, assembled systems, trained policies, pricing tables) by a
//! content hash of its inputs — repeated or overlapping experiments share
//! work automatically.
//!
//! ```
//! use ect_core::prelude::*;
//! use std::sync::Arc;
//!
//! // A miniature world: 3 hubs, short histories, tiny training budgets.
//! let session = SessionBuilder::new(SystemConfig::miniature())
//!     .scale(RunScale::Smoke)
//!     .threads(2)
//!     .build()?;
//!
//! // The world is generated on first use and memoised afterwards.
//! let system = session.system()?;
//! assert!(Arc::ptr_eq(&system, &session.system()?));
//!
//! // Table II: the paper's pricing methods vs the oracle, trained once per
//! // (config, discount grid) and served from the artifact store afterwards.
//! let table = session.pricing_table(&[0.2])?;
//! assert!(table.result("Ours", 0.2).is_some());
//! assert_eq!(session.store().kind_stats("pricing-table").builds, 1);
//! # Ok::<(), ect_types::EctError>(())
//! ```
//!
//! Evaluation units implement the [`Experiment`] trait (`ect-bench` keeps a
//! registry of every paper figure/table); the legacy free functions
//! (`run_fleet`, `run_scenario_grid`, `run_generalist`,
//! `run_severity_sweep`, `pricing_table`) remain as deprecated shims over
//! the same engines.
//!
//! The [`prelude`] re-exports the types most applications need.

pub mod artifact;
pub mod cache;
pub mod coordination;
pub mod dispatch;
pub mod experiment;
pub mod generalist;
pub mod microsim;
pub mod pricing;
pub mod report;
pub mod scenario_grid;
pub mod scheduling;
pub mod session;
pub mod severity;
pub mod system;

pub use artifact::{ArtifactKey, ArtifactStore, KindStats};
pub use cache::{CacheProvenance, DiskCache, CACHE_FORMAT_VERSION};
pub use coordination::{
    run_coordination, CoordinationArm, CoordinationOptions, CoordinationOutcome, RoadGraphTopology,
    TopologySource,
};
pub use dispatch::{run_dag, run_indexed};
pub use experiment::{run_timed, Experiment, ExperimentOutput};
#[allow(deprecated)]
pub use generalist::run_generalist;
pub use generalist::{
    heldout_baselines, run_generalist_against, GeneralistOptions, GeneralistOutcome,
    GeneralistReport, HeldOutBaseline, HeldOutComparison,
};
pub use microsim::{synthesize_demand_parallel, MicrosimDemandOptions};
#[allow(deprecated)]
pub use pricing::pricing_table;
pub use pricing::{train_engine, MethodPricingResults, PricingTable};
pub use report::FleetReport;
#[allow(deprecated)]
pub use scenario_grid::run_scenario_grid;
pub use scenario_grid::{scenario_stress, NamedEngines, ScenarioGridResult, ScenarioHubStress};
#[allow(deprecated)]
pub use scheduling::run_fleet;
pub use scheduling::{
    run_hub_method, run_hub_scheduler, run_hubs_method_batched, schedule_for_hub,
    HubExperimentResult, OBS_WINDOW,
};
pub use session::{kind_versions, ProgressSink, RunScale, Session, SessionBuilder};
#[allow(deprecated)]
pub use severity::run_severity_sweep;
pub use severity::{
    SeverityCurve, SeverityOptions, SeverityOutcome, SeverityPoint, SeverityReport,
};
pub use system::{EctHubSystem, PricingMethod, SystemConfig};

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::artifact::{ArtifactKey, ArtifactStore, KindStats};
    pub use crate::cache::{CacheProvenance, DiskCache};
    pub use crate::coordination::{
        run_coordination, CoordinationArm, CoordinationOptions, CoordinationOutcome,
        RoadGraphTopology, TopologySource,
    };
    pub use crate::experiment::{run_timed, Experiment, ExperimentOutput};
    #[allow(deprecated)]
    pub use crate::generalist::run_generalist;
    pub use crate::generalist::{
        heldout_baselines, run_generalist_against, GeneralistOptions, GeneralistOutcome,
        GeneralistReport, HeldOutBaseline, HeldOutComparison,
    };
    pub use crate::microsim::{synthesize_demand_parallel, MicrosimDemandOptions};
    #[allow(deprecated)]
    pub use crate::pricing::pricing_table;
    pub use crate::pricing::{train_engine, PricingTable};
    pub use crate::report::FleetReport;
    #[allow(deprecated)]
    pub use crate::scenario_grid::run_scenario_grid;
    pub use crate::scenario_grid::{
        scenario_stress, NamedEngines, ScenarioGridResult, ScenarioHubStress,
    };
    #[allow(deprecated)]
    pub use crate::scheduling::run_fleet;
    pub use crate::scheduling::{
        run_hub_method, run_hub_scheduler, run_hubs_method_batched, schedule_for_hub,
        HubExperimentResult,
    };
    pub use crate::session::{ProgressSink, RunScale, Session, SessionBuilder};
    #[allow(deprecated)]
    pub use crate::severity::run_severity_sweep;
    pub use crate::severity::{
        SeverityCurve, SeverityOptions, SeverityOutcome, SeverityPoint, SeverityReport,
    };
    pub use crate::system::{EctHubSystem, PricingMethod, SystemConfig};
    pub use ect_data::charging::Stratum;
    pub use ect_data::dataset::{HubSiting, WorldConfig, WorldDataset};
    pub use ect_data::scenario::randomized::{
        distribution_by_name, distribution_library, ParamRange, ScenarioDistribution, StressAxis,
        DISTRIBUTION_NAMES,
    };
    pub use ect_data::scenario::{
        scenario_by_name, scenario_library, ScenarioModifier, ScenarioSpec, Signal, SlotWindow,
        SCENARIO_NAMES,
    };
    pub use ect_data::topology::HubTopology;
    pub use ect_drl::generalist::{
        train_holdout_split, ScenarioMixture, HELDOUT_SCENARIOS, TRAIN_SCENARIOS,
    };
    pub use ect_drl::heuristics::{DrlScheduler, GreedyPrice, NoBattery, Scheduler, TimeOfUse};
    pub use ect_drl::scenario_source::{ScenarioSource, WorldCache};
    pub use ect_drl::trainer::TrainerConfig;
    pub use ect_env::battery::BpAction;
    pub use ect_env::coupling::{CouplingConfig, FeederConfig, SpilloverConfig, MUTUAL_OBS_DIM};
    pub use ect_env::env::{HubEnv, ObsAugmentation};
    pub use ect_env::hub::HubConfig;
    pub use ect_env::tariff::DiscountSchedule;
    pub use ect_microsim::{
        synthesize_demand, FlashCrowd, MicrosimConfig, MicrosimDemand, MicrosimEngine,
    };
    pub use ect_price::engine::PricingEngine;
    pub use ect_price::eval::evaluate_engine;
    pub use ect_types::ids::{HubId, StationId};
    pub use ect_types::rng::EctRng;
    pub use ect_types::time::SlotIndex;
    pub use ect_types::units::{DollarsPerKwh, KiloWatt, KiloWattHour, Money};
}
