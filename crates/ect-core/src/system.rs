//! The operator-facing system: configuration and world assembly.

use ect_data::dataset::{WorldConfig, WorldDataset};
use ect_data::scenario::ScenarioSpec;
use ect_drl::trainer::TrainerConfig;
use ect_price::baselines::{BaselineConfig, BaselineKind};
use ect_price::features::{FeatureSpace, PricingDataset};
use ect_price::model::EctPriceConfig;
use ect_types::rng::EctRng;
use ect_types::time::SlotIndex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which pricing method drives the discount schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PricingMethod {
    /// The paper's method (counterfactual multi-task stratification).
    EctPrice,
    /// Outcome-regression uplift baseline.
    OutcomeRegression,
    /// Inverse-propensity-scoring uplift baseline.
    InversePropensity,
    /// Doubly-robust uplift baseline.
    DoublyRobust,
    /// Control: never discount.
    NoDiscount,
}

impl PricingMethod {
    /// The four methods compared throughout the paper's evaluation, in its
    /// table order (`Ours` last, as in Table II/III rows).
    pub const PAPER_SET: [PricingMethod; 4] = [
        PricingMethod::OutcomeRegression,
        PricingMethod::InversePropensity,
        PricingMethod::DoublyRobust,
        PricingMethod::EctPrice,
    ];

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PricingMethod::EctPrice => "Ours",
            PricingMethod::OutcomeRegression => "OR",
            PricingMethod::InversePropensity => "IPS",
            PricingMethod::DoublyRobust => "DR",
            PricingMethod::NoDiscount => "NoDiscount",
        }
    }

    /// The uplift-baseline kind, if this method is one.
    pub fn baseline_kind(self) -> Option<BaselineKind> {
        match self {
            PricingMethod::OutcomeRegression => Some(BaselineKind::OutcomeRegression),
            PricingMethod::InversePropensity => Some(BaselineKind::InversePropensity),
            PricingMethod::DoublyRobust => Some(BaselineKind::DoublyRobust),
            _ => None,
        }
    }
}

impl std::fmt::Display for PricingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Full system configuration: world + pricing + scheduling budgets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Synthetic-world settings (hubs, horizon, seeds).
    pub world: WorldConfig,
    /// Exogenous scenario the world is generated under
    /// ([`ScenarioSpec::baseline`] reproduces the paper's setting).
    pub scenario: ScenarioSpec,
    /// Hours of observational charging history used to train pricing
    /// (the paper uses ≈ 2 years of its 3-year dataset).
    pub pricing_history_slots: usize,
    /// Hours of held-out history used to evaluate pricing (≈ 1 year).
    pub pricing_test_slots: usize,
    /// ECT-Price hyper-parameters.
    pub ect_price: EctPriceConfig,
    /// Baseline hyper-parameters.
    pub baseline: BaselineConfig,
    /// Discount level `c` offered when a slot is selected.
    pub discount: f64,
    /// DRL training budget per (hub, method) pair.
    pub trainer: TrainerConfig,
    /// DRL test episodes (the paper uses 100).
    pub test_episodes: usize,
    /// Master seed for the pipeline stages.
    pub seed: u64,
}

impl Default for SystemConfig {
    /// The paper-shaped configuration (12 hubs, 30-day episodes, 2y/1y
    /// pricing split). Training budgets default to a laptop-scale fraction
    /// of the paper's; raise [`TrainerConfig::episodes`] and
    /// [`SystemConfig::test_episodes`] to 500/100 to match the paper
    /// exactly.
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            scenario: ScenarioSpec::baseline(),
            pricing_history_slots: 24 * 365 * 2,
            pricing_test_slots: 24 * 365,
            ect_price: EctPriceConfig::default(),
            baseline: BaselineConfig::default(),
            discount: 0.3,
            trainer: TrainerConfig {
                episodes: 60,
                ..TrainerConfig::default()
            },
            test_episodes: 20,
            seed: 0xEC7C0DE,
        }
    }
}

impl SystemConfig {
    /// A miniature configuration for tests and examples: small world, short
    /// histories, tiny training budgets.
    pub fn miniature() -> Self {
        Self {
            world: WorldConfig {
                num_hubs: 3,
                horizon_slots: 24 * 30,
                ..WorldConfig::default()
            },
            pricing_history_slots: 24 * 7 * 8,
            pricing_test_slots: 24 * 7 * 2,
            ect_price: EctPriceConfig {
                embed_dim: 4,
                hidden: vec![16],
                epochs: 3,
                ..EctPriceConfig::default()
            },
            baseline: BaselineConfig {
                embed_dim: 4,
                mlp_hidden: vec![8],
                epochs: 2,
                ..BaselineConfig::default()
            },
            trainer: TrainerConfig {
                episodes: 4,
                ..TrainerConfig::default()
            },
            test_episodes: 2,
            ..Self::default()
        }
    }

    /// Validates cross-component consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] on inconsistencies.
    pub fn validate(&self) -> ect_types::Result<()> {
        self.world.validate()?;
        self.scenario.validate(self.world.horizon_slots)?;
        if self.pricing_history_slots == 0 || self.pricing_test_slots == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "pricing history and test windows must be non-empty".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.discount) || self.discount == 0.0 {
            return Err(ect_types::EctError::InvalidConfig(format!(
                "discount must lie in (0, 1), got {}",
                self.discount
            )));
        }
        if self.test_episodes == 0 || self.trainer.episodes == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "training and test episode budgets must be positive".into(),
            ));
        }
        self.trainer.ppo.validate()?;
        Ok(())
    }
}

/// The assembled system: a generated world plus the pipeline configuration.
#[derive(Debug, Clone)]
pub struct EctHubSystem {
    config: SystemConfig,
    // `Arc`-shared so cloning a system (scenario grids, artifact-store
    // adoption, bench artifacts) never duplicates the generated series.
    world: Arc<WorldDataset>,
}

impl EctHubSystem {
    /// Generates the world and validates the configuration.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn new(config: SystemConfig) -> ect_types::Result<Self> {
        config.validate()?;
        let world = Arc::new(WorldDataset::generate_scenario(
            config.world.clone(),
            &config.scenario,
        )?);
        Ok(Self { config, world })
    }

    /// Assembles a system around an **already generated** world of the same
    /// configuration — the artifact-store path of
    /// [`Session::system_for`](crate::session::Session::system_for), where
    /// the world memo has already run the generators. Bit-identical to
    /// [`EctHubSystem::new`] because generation is deterministic in the
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; returns
    /// [`ect_types::EctError::InvalidConfig`] when the world was generated
    /// under a different scenario, and
    /// [`ect_types::EctError::ShapeMismatch`] when its shape disagrees with
    /// the configuration.
    pub fn from_parts(config: SystemConfig, world: Arc<WorldDataset>) -> ect_types::Result<Self> {
        config.validate()?;
        if world.scenario != config.scenario {
            return Err(ect_types::EctError::InvalidConfig(format!(
                "adopted world was generated under scenario '{}', config wants '{}'",
                world.scenario.name, config.scenario.name
            )));
        }
        if world.horizon() != config.world.horizon_slots {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "adopted world horizon",
                expected: config.world.horizon_slots,
                actual: world.horizon(),
            });
        }
        if world.num_hubs() != config.world.num_hubs {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "adopted world hubs",
                expected: config.world.num_hubs as usize,
                actual: world.num_hubs() as usize,
            });
        }
        Ok(Self { config, world })
    }

    /// Rebuilds the same system under a different scenario (the
    /// scenario-grid entry point: one world per scenario, everything else
    /// shared).
    ///
    /// # Errors
    ///
    /// Propagates validation and generation failures.
    pub fn with_scenario(&self, scenario: ScenarioSpec) -> ect_types::Result<Self> {
        Self::new(SystemConfig {
            scenario,
            ..self.config.clone()
        })
    }

    /// Rebuilds the same system around an **already generated** world —
    /// e.g. one resolved through a `WorldCache` — instead of regenerating
    /// it. The config's scenario is replaced by the world's own spec, so
    /// [`EctHubSystem::config`] and [`EctHubSystem::world`] stay
    /// consistent; the result is bit-identical to
    /// [`EctHubSystem::with_scenario`] when the world came from the same
    /// [`WorldConfig`].
    ///
    /// # Errors
    ///
    /// Propagates config validation failures, and returns
    /// [`ect_types::EctError::ShapeMismatch`] when the world's shape
    /// disagrees with this system's world configuration.
    pub fn with_world(&self, world: Arc<WorldDataset>) -> ect_types::Result<Self> {
        if world.horizon() != self.config.world.horizon_slots {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "adopted world horizon",
                expected: self.config.world.horizon_slots,
                actual: world.horizon(),
            });
        }
        if world.num_hubs() != self.config.world.num_hubs {
            return Err(ect_types::EctError::ShapeMismatch {
                context: "adopted world hubs",
                expected: self.config.world.num_hubs as usize,
                actual: world.num_hubs() as usize,
            });
        }
        let config = SystemConfig {
            scenario: world.scenario.clone(),
            ..self.config.clone()
        };
        config.validate()?;
        Ok(Self { config, world })
    }

    /// System configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The generated world.
    pub fn world(&self) -> &WorldDataset {
        &self.world
    }

    /// The pricing feature space (one station per hub).
    pub fn feature_space(&self) -> FeatureSpace {
        FeatureSpace::new(self.world.num_hubs() as usize)
            .expect("world guarantees at least one hub")
    }

    /// Generates the observational pricing history and splits it into
    /// train/test at the configured boundary.
    pub fn pricing_datasets(&self) -> (PricingDataset, PricingDataset) {
        let total = self.config.pricing_history_slots + self.config.pricing_test_slots;
        let mut rng = EctRng::seed_from(self.config.seed).fork(0xDA7A);
        let records = self.world.charging.generate_history(total, &mut rng);
        let space = self.feature_space();
        let all = PricingDataset::from_records(&space, &records);
        all.split_at_slot(SlotIndex::new(self.config.pricing_history_slots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_ours_last() {
        assert_eq!(PricingMethod::PAPER_SET[3], PricingMethod::EctPrice);
        assert_eq!(PricingMethod::EctPrice.label(), "Ours");
        assert_eq!(PricingMethod::OutcomeRegression.label(), "OR");
        assert!(PricingMethod::EctPrice.baseline_kind().is_none());
        assert_eq!(
            PricingMethod::DoublyRobust.baseline_kind(),
            Some(BaselineKind::DoublyRobust)
        );
    }

    #[test]
    fn miniature_config_validates_and_builds() {
        let system = EctHubSystem::new(SystemConfig::miniature()).unwrap();
        assert_eq!(system.world().num_hubs(), 3);
        let (train, test) = system.pricing_datasets();
        assert!(!train.is_empty() && !test.is_empty());
        assert_eq!(
            train.len() + test.len(),
            (SystemConfig::miniature().pricing_history_slots
                + SystemConfig::miniature().pricing_test_slots)
                * 3
        );
    }

    #[test]
    fn validation_rejects_bad_discounts() {
        let mut cfg = SystemConfig::miniature();
        cfg.discount = 0.0;
        assert!(cfg.validate().is_err());
        cfg.discount = 1.0;
        assert!(cfg.validate().is_err());
        cfg.discount = 0.3;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_empty_budgets() {
        let mut cfg = SystemConfig::miniature();
        cfg.test_episodes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::miniature();
        cfg.pricing_test_slots = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn world_generation_is_deterministic() {
        let a = EctHubSystem::new(SystemConfig::miniature()).unwrap();
        let b = EctHubSystem::new(SystemConfig::miniature()).unwrap();
        assert_eq!(a.world().rtp, b.world().rtp);
    }

    #[test]
    fn scenario_threads_through_to_the_world() {
        use ect_data::scenario::scenario_by_name;
        let base = EctHubSystem::new(SystemConfig::miniature()).unwrap();
        assert!(base.world().scenario.is_baseline());
        let horizon = base.config().world.horizon_slots;
        let storm = base
            .with_scenario(scenario_by_name("winter-storm", horizon).unwrap())
            .unwrap();
        assert_eq!(storm.world().scenario.name, "winter-storm");
        let wind = |s: &EctHubSystem| -> f64 {
            s.world().hubs[0].weather.iter().map(|w| w.wind_speed).sum()
        };
        assert!(wind(&storm) < wind(&base));
        // An invalid scenario for this horizon is rejected at validation.
        use ect_data::scenario::{ScenarioModifier, ScenarioSpec, Signal, SlotWindow, Spike};
        let bad = ScenarioSpec::named("bad", "bad").with(ScenarioModifier::Spike(Spike {
            signal: Signal::Price,
            window: SlotWindow::new(horizon, 2),
            factor: 2.0,
        }));
        assert!(base.with_scenario(bad).is_err());
    }
}
