//! Assembled experiment reports: Table III and the Fig. 13 series.

use crate::scheduling::HubExperimentResult;
use serde::{Deserialize, Serialize};

/// The fleet-wide reward matrix (the paper's Table III) plus the per-day
/// series backing Fig. 13.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FleetReport {
    /// All (hub, method) cells.
    pub cells: Vec<HubExperimentResult>,
}

impl FleetReport {
    /// Wraps fleet results.
    pub fn new(cells: Vec<HubExperimentResult>) -> Self {
        Self { cells }
    }

    /// Distinct method labels, preserving first-seen order.
    pub fn methods(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.method) {
                out.push(c.method.clone());
            }
        }
        out
    }

    /// Distinct hub ids, ascending.
    pub fn hubs(&self) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.hub) {
                out.push(c.hub);
            }
        }
        out.sort_unstable();
        out
    }

    /// The cell for a given hub and method.
    pub fn cell(&self, hub: u32, method: &str) -> Option<&HubExperimentResult> {
        self.cells
            .iter()
            .find(|c| c.hub == hub && c.method == method)
    }

    /// Average daily reward of one method across all hubs.
    ///
    /// # Panics
    ///
    /// Panics if the method has no cells.
    pub fn method_mean(&self, method: &str) -> f64 {
        let rewards: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.method == method)
            .map(|c| c.avg_daily_reward)
            .collect();
        assert!(!rewards.is_empty(), "no cells for method {method}");
        rewards.iter().sum::<f64>() / rewards.len() as f64
    }

    /// Method with the highest reward on each hub.
    pub fn winners(&self) -> Vec<(u32, String)> {
        self.hubs()
            .into_iter()
            .map(|hub| {
                let best = self
                    .cells
                    .iter()
                    .filter(|c| c.hub == hub)
                    .max_by(|a, b| a.avg_daily_reward.total_cmp(&b.avg_daily_reward))
                    .expect("hub has cells");
                (hub, best.method.clone())
            })
            .collect()
    }

    /// Renders the Table III layout: methods as rows, hubs as columns.
    pub fn table3_markdown(&self) -> String {
        let hubs = self.hubs();
        let mut out = String::from("| Methods |");
        for h in &hubs {
            out.push_str(&format!(" Hub{} |", h + 1));
        }
        out.push_str(" Mean |\n|---|");
        for _ in 0..=hubs.len() {
            out.push_str("---|");
        }
        out.push('\n');
        for method in self.methods() {
            out.push_str(&format!("| {method} |"));
            for &h in &hubs {
                match self.cell(h, &method) {
                    Some(c) => out.push_str(&format!(" {:.2} |", c.avg_daily_reward)),
                    None => out.push_str(" – |"),
                }
            }
            out.push_str(&format!(" {:.2} |\n", self.method_mean(&method)));
        }
        out
    }

    /// The Fig. 13 series for one hub: `(method, per-day rewards)` pairs.
    pub fn fig13_series(&self, hub: u32) -> Vec<(String, Vec<f64>)> {
        self.cells
            .iter()
            .filter(|c| c.hub == hub)
            .map(|c| (c.method.clone(), c.daily_series.clone()))
            .collect()
    }

    /// Renders a Fig. 13-style text series for one hub.
    pub fn fig13_markdown(&self, hub: u32) -> String {
        let mut out = format!("**Hub {} — daily reward ($/day)**\n\n", hub + 1);
        for (method, series) in self.fig13_series(hub) {
            out.push_str(&format!("{method:>12}: "));
            for v in &series {
                out.push_str(&format!("{v:7.1} "));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(hub: u32, method: &str, reward: f64) -> HubExperimentResult {
        HubExperimentResult {
            hub,
            method: method.to_string(),
            avg_daily_reward: reward,
            daily_series: vec![reward; 3],
            final_training_return: reward * 30.0,
        }
    }

    fn report() -> FleetReport {
        FleetReport::new(vec![
            cell(0, "OR", 10.0),
            cell(0, "Ours", 12.0),
            cell(1, "OR", 8.0),
            cell(1, "Ours", 9.0),
        ])
    }

    #[test]
    fn structure_queries() {
        let r = report();
        assert_eq!(r.methods(), vec!["OR".to_string(), "Ours".to_string()]);
        assert_eq!(r.hubs(), vec![0, 1]);
        assert_eq!(r.cell(1, "Ours").unwrap().avg_daily_reward, 9.0);
        assert!(r.cell(2, "Ours").is_none());
    }

    #[test]
    fn means_and_winners() {
        let r = report();
        assert!((r.method_mean("Ours") - 10.5).abs() < 1e-12);
        assert!((r.method_mean("OR") - 9.0).abs() < 1e-12);
        let winners = r.winners();
        assert_eq!(
            winners,
            vec![(0, "Ours".to_string()), (1, "Ours".to_string())]
        );
    }

    #[test]
    fn markdown_renders_both_views() {
        let r = report();
        let t3 = r.table3_markdown();
        assert!(t3.contains("| Ours |"));
        assert!(t3.contains("Hub1"));
        assert!(t3.contains("Mean"));
        let f13 = r.fig13_markdown(0);
        assert!(f13.contains("Hub 1"));
        assert!(f13.contains("Ours"));
    }

    #[test]
    #[should_panic(expected = "no cells for method")]
    fn method_mean_requires_cells() {
        let _ = report().method_mean("DR");
    }
}
