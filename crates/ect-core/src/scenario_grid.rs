//! Scenario-sweep dispatch: a pricing-method × stress-scenario matrix fanned
//! across the batched fleet workers.
//!
//! [`run_scenario_grid`] is the scenario-engine face of
//! [`run_fleet`](crate::scheduling::run_fleet): one
//! [`EctHubSystem`] per [`ScenarioSpec`], the full `scenario × method ×
//! hub-chunk` job list spread over worker threads, and every chunk trained
//! as one lockstep [`ect_env::vec_env::FleetEnv`] batch via
//! [`run_hubs_method_batched`].
//! Alongside the reward cells it reports per-hub stress diagnostics
//! ([`ScenarioHubStress`]): baseline grid cost and revenue exposure,
//! worst-case blackout ride-through, and the unserved energy of the
//! scenario's scripted outages.

use crate::scheduling::{run_hubs_method_batched, HubExperimentResult, OBS_WINDOW};
use crate::system::EctHubSystem;
use ect_data::scenario::ScenarioSpec;
use ect_env::battery::BpAction;
use ect_env::blackout::{ride_through, worst_case_ride_through, BlackoutScenario};
use ect_env::fleet::env_for_hub;
use ect_env::hub::HubConfig;
use ect_env::tariff::DiscountSchedule;
use ect_price::engine::PricingEngine;
use ect_types::ids::HubId;
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// Per-hub stress diagnostics of one scenario world, independent of any
/// pricing method or learned policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioHubStress {
    /// Hub evaluated.
    pub hub: u32,
    /// Grid cost of a battery-idle, no-discount rollout over the horizon, $
    /// — the scenario's raw cost exposure.
    pub baseline_grid_cost: f64,
    /// Charging revenue of the same reference rollout, $.
    pub baseline_revenue: f64,
    /// Unserved base-station energy of the worst `recovery_hours` outage
    /// anywhere in the horizon, starting from the reserve SoC, kWh.
    pub worst_unserved_kwh: f64,
    /// Hours fully served before the first shortfall in that worst case.
    pub worst_endurance_hours: f64,
    /// Total unserved energy across the scenario's scripted outages, kWh
    /// (zero when the spec scripts none).
    pub outage_unserved_kwh: f64,
}

/// One scenario's slice of the grid: reward cells for every (hub, method)
/// pair plus the per-hub stress diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioGridResult {
    /// Scenario name (the registry key).
    pub scenario: String,
    /// Scenario description, carried for reports.
    pub description: String,
    /// Reward cells, sorted by `(hub, method)`.
    pub cells: Vec<HubExperimentResult>,
    /// Per-hub stress diagnostics, sorted by hub.
    pub stress: Vec<ScenarioHubStress>,
}

impl ScenarioGridResult {
    /// Mean `avg_daily_reward` over this scenario's cells of one method.
    ///
    /// Returns NaN when the method has no cells.
    pub fn method_mean(&self, method: &str) -> f64 {
        let cells: Vec<&HubExperimentResult> =
            self.cells.iter().filter(|c| c.method == method).collect();
        if cells.is_empty() {
            return f64::NAN;
        }
        cells.iter().map(|c| c.avg_daily_reward).sum::<f64>() / cells.len() as f64
    }
}

/// Computes the per-hub stress diagnostics of one scenario system.
///
/// # Errors
///
/// Propagates environment construction and blackout-simulation failures.
pub fn scenario_stress(system: &EctHubSystem) -> ect_types::Result<Vec<ScenarioHubStress>> {
    let world = system.world();
    let horizon = world.horizon();
    let mut stress = Vec::with_capacity(world.hubs.len());
    for (h, traces) in world.hubs.iter().enumerate() {
        let hub = HubId::new(h as u32);
        let config = HubConfig::for_siting(traces.siting);
        let reserve_kwh = config.battery.soc_min_fraction.as_f64() * config.battery.capacity_kwh;

        // Reference rollout: battery idle, no discounts — pure exposure.
        let mut rng = EctRng::seed_from(system.config().seed ^ (h as u64) ^ 0x57E55);
        let mut env = env_for_hub(
            world,
            hub,
            0,
            horizon,
            DiscountSchedule::none(horizon),
            OBS_WINDOW,
            &mut rng,
        )?;
        let (_, trail) = env.rollout(0.5, |_, _| BpAction::Idle);
        let baseline_grid_cost: f64 = trail.iter().map(|b| b.grid_cost.as_f64()).sum();
        let baseline_revenue: f64 = trail.iter().map(|b| b.revenue.as_f64()).sum();

        // Worst-case unscripted outage of the design duration.
        let duration = config.recovery_hours.min(horizon).max(1);
        let worst = worst_case_ride_through(
            &config,
            &traces.weather,
            &traces.traffic,
            reserve_kwh,
            duration,
        )?;

        // Scripted rolling outages of the scenario, if any.
        let mut outage_unserved_kwh = 0.0;
        for window in &world.scenario.outages {
            let outcome = ride_through(
                &config,
                &traces.weather,
                &traces.traffic,
                reserve_kwh,
                BlackoutScenario {
                    start_slot: window.start,
                    duration_hours: window.len,
                },
            )?;
            outage_unserved_kwh += outcome.unserved_kwh;
        }

        stress.push(ScenarioHubStress {
            hub: hub.as_u32(),
            baseline_grid_cost,
            baseline_revenue,
            worst_unserved_kwh: worst.unserved_kwh,
            worst_endurance_hours: worst.hours_sustained as f64,
            outage_unserved_kwh,
        });
    }
    Ok(stress)
}

/// The labelled pricing engines one scenario system runs under — the same
/// shape [`run_fleet`](crate::scheduling::run_fleet) consumes.
pub type NamedEngines = Vec<(String, Box<dyn PricingEngine>)>;

/// Runs the full method × scenario matrix over every hub of the base
/// system's world.
///
/// `engines_for` builds the named pricing engines *per scenario system*
/// (engines may train on the scenario's own observational history).
/// Execution fans the flat `scenario × method × hub-chunk` job list across
/// `threads` workers (0 = one worker per job); each job trains its hub chunk
/// as one lockstep batched fleet, bit-identical to the sequential per-cell
/// path under the shared system seed.
///
/// # Errors
///
/// Returns the first scenario-construction, engine-construction or training
/// error encountered.
#[deprecated(
    since = "0.2.0",
    note = "route through the unified experiment API: `Session::scenario_grid` \
            (crate::session) shares the base system via the artifact store"
)]
pub fn run_scenario_grid(
    base: &EctHubSystem,
    scenarios: &[ScenarioSpec],
    engines_for: &(dyn Fn(&EctHubSystem) -> ect_types::Result<NamedEngines> + Sync),
    threads: usize,
) -> ect_types::Result<Vec<ScenarioGridResult>> {
    scenario_grid_impl(base, scenarios, engines_for, threads)
}

/// The scenario-grid engine behind [`run_scenario_grid`] and
/// [`Session::scenario_grid`](crate::session::Session::scenario_grid).
pub(crate) fn scenario_grid_impl(
    base: &EctHubSystem,
    scenarios: &[ScenarioSpec],
    engines_for: &(dyn Fn(&EctHubSystem) -> ect_types::Result<NamedEngines> + Sync),
    threads: usize,
) -> ect_types::Result<Vec<ScenarioGridResult>> {
    if scenarios.is_empty() {
        return Ok(Vec::new());
    }
    // Stage 1 (parallel): one system + engine set per scenario. World
    // generation and engine training are independent across scenarios, so
    // they fan across the same worker budget as the training jobs.
    let stage1_workers = if threads == 0 {
        scenarios.len()
    } else {
        threads.min(scenarios.len()).max(1)
    };
    let specs: Vec<&ScenarioSpec> = scenarios.iter().collect();
    let runs: Vec<(EctHubSystem, NamedEngines)> =
        crate::dispatch::run_indexed(specs, stage1_workers, |_, spec| {
            let system = base.with_scenario(spec.clone())?;
            let engines = engines_for(&system)?;
            Ok((system, engines))
        })?;

    // Stage 2 (parallel): fan scenario × method × hub-chunk jobs.
    let num_hubs = base.world().num_hubs() as usize;
    let hubs: Vec<HubId> = (0..num_hubs as u32).map(HubId::new).collect();
    let num_jobs_unchunked: usize = runs.iter().map(|(_, engines)| engines.len()).sum();
    let cells = num_jobs_unchunked * num_hubs;
    if cells == 0 {
        return Ok(Vec::new());
    }
    let workers = if threads == 0 {
        cells
    } else {
        threads.min(cells).max(1)
    };
    let chunks_per_job = workers
        .div_ceil(num_jobs_unchunked.max(1))
        .clamp(1, num_hubs);
    let chunk_len = num_hubs.div_ceil(chunks_per_job);
    let hubs = &hubs;
    let jobs: Vec<(usize, usize, &[HubId])> = runs
        .iter()
        .enumerate()
        .flat_map(|(s, (_, engines))| {
            (0..engines.len())
                .flat_map(move |e| hubs.chunks(chunk_len).map(move |chunk| (s, e, chunk)))
        })
        .collect();

    let runs_ref = &runs;
    let per_job =
        crate::dispatch::run_indexed(jobs, workers, |_, (scenario_idx, engine_idx, chunk)| {
            let (system, engines) = &runs_ref[scenario_idx];
            let (label, engine) = &engines[engine_idx];
            run_hubs_method_batched(system, chunk, engine.as_ref(), label)
                .map(|cells| (scenario_idx, cells))
        })?;

    // Stage 3 (sequential): group cells per scenario and attach stress.
    let mut grouped: Vec<Vec<HubExperimentResult>> = vec![Vec::new(); runs.len()];
    for (scenario_idx, mut cells) in per_job {
        grouped[scenario_idx].append(&mut cells);
    }
    let mut out = Vec::with_capacity(runs.len());
    for ((system, _), (spec, mut cells)) in runs.iter().zip(scenarios.iter().zip(grouped)) {
        cells.sort_by(|a, b| (a.hub, &a.method).cmp(&(b.hub, &b.method)));
        out.push(ScenarioGridResult {
            scenario: spec.name.clone(),
            description: spec.description.clone(),
            cells,
            stress: scenario_stress(system)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use ect_data::scenario::{scenario_by_name, ScenarioSpec};
    use ect_price::engine::{AlwaysDiscount, NeverDiscount};

    fn small_system() -> EctHubSystem {
        let mut config = SystemConfig::miniature();
        config.world.num_hubs = 2;
        config.world.horizon_slots = 24 * 4;
        config.trainer.episodes = 2;
        config.test_episodes = 1;
        EctHubSystem::new(config).unwrap()
    }

    fn cheap_engines(
        _system: &EctHubSystem,
    ) -> ect_types::Result<Vec<(String, Box<dyn PricingEngine>)>> {
        Ok(vec![
            (
                "NoDiscount".into(),
                Box::new(NeverDiscount) as Box<dyn PricingEngine>,
            ),
            ("AlwaysDiscount".into(), Box::new(AlwaysDiscount)),
        ])
    }

    #[test]
    fn grid_covers_every_scenario_method_hub_cell() {
        let base = small_system();
        let horizon = base.config().world.horizon_slots;
        let scenarios = vec![
            ScenarioSpec::baseline(),
            scenario_by_name("rtp-price-spike", horizon).unwrap(),
        ];
        let grid = scenario_grid_impl(&base, &scenarios, &cheap_engines, 4).unwrap();
        assert_eq!(grid.len(), 2);
        for (result, spec) in grid.iter().zip(&scenarios) {
            assert_eq!(result.scenario, spec.name);
            assert_eq!(result.cells.len(), 2 * 2, "{}", spec.name);
            assert_eq!(result.stress.len(), 2);
            assert!(result
                .cells
                .windows(2)
                .all(|w| (w[0].hub, &w[0].method) <= (w[1].hub, &w[1].method)));
            assert!(result.method_mean("NoDiscount").is_finite());
            assert!(result.method_mean("missing").is_nan());
            for s in &result.stress {
                assert!(s.baseline_grid_cost.is_finite());
                assert!(s.worst_endurance_hours >= 0.0);
            }
        }
        // The price spike raises the scenario's cost exposure.
        let cost =
            |r: &ScenarioGridResult| -> f64 { r.stress.iter().map(|s| s.baseline_grid_cost).sum() };
        assert!(cost(&grid[1]) > cost(&grid[0]));
    }

    #[test]
    #[allow(deprecated)] // the legacy shim must stay green
    fn grid_results_match_direct_fleet_runs() {
        // A grid over the baseline scenario must reproduce run_fleet's cells
        // bit for bit (same seeds, same batched engine underneath).
        let base = small_system();
        let grid =
            scenario_grid_impl(&base, &[ScenarioSpec::baseline()], &cheap_engines, 2).unwrap();
        let engines = cheap_engines(&base).unwrap();
        let direct = crate::scheduling::run_fleet(&base, &engines, 2).unwrap();
        assert_eq!(grid[0].cells.len(), direct.len());
        for (a, b) in grid[0].cells.iter().zip(&direct) {
            assert_eq!(a.hub, b.hub);
            assert_eq!(a.method, b.method);
            assert_eq!(a.avg_daily_reward.to_bits(), b.avg_daily_reward.to_bits());
        }
    }

    #[test]
    fn rolling_blackout_scenario_reports_outage_shortfall() {
        let base = small_system();
        let horizon = base.config().world.horizon_slots;
        let blackout = scenario_by_name("rolling-blackout", horizon).unwrap();
        assert!(!blackout.outages.is_empty());
        let system = base.with_scenario(blackout).unwrap();
        let stress = scenario_stress(&system).unwrap();
        for s in &stress {
            // The reserve is sized for the design outage, so scripted 4-hour
            // events are survivable — but the field must be populated.
            assert!(s.outage_unserved_kwh >= 0.0);
            assert!(s.outage_unserved_kwh.is_finite());
        }
    }

    #[test]
    fn empty_grids_are_empty() {
        let base = small_system();
        assert!(scenario_grid_impl(&base, &[], &cheap_engines, 2)
            .unwrap()
            .is_empty());
        let no_engines =
            |_: &EctHubSystem| -> ect_types::Result<Vec<(String, Box<dyn PricingEngine>)>> {
                Ok(Vec::new())
            };
        assert!(
            scenario_grid_impl(&base, &[ScenarioSpec::baseline()], &no_engines, 2)
                .unwrap()
                .is_empty()
        );
    }
}
