//! Severity sweeps: robustness curves of a domain-randomised generalist.
//!
//! [`run_severity_sweep`] is the operator-facing entry point:
//!
//! 1. train one shared policy on **sampled** scenarios — every episode draws
//!    fresh specs from a continuous [`ScenarioDistribution`] through
//!    [`ScenarioSource::Sampled`](ect_drl::scenario_source::ScenarioSource),
//!    with per-episode worlds generated through an LRU-bounded
//!    [`WorldCache`] (the spec space is infinite, the memory is not);
//! 2. for every [`StressAxis`], walk a monotone intensity ladder: each rung
//!    is the axis preset's deterministic
//!    [`severity_spec`](ScenarioDistribution::severity_spec) —
//!    baseline-equivalent at intensity `0`, the preset's extreme at `1`;
//! 3. at each rung, score the trained generalist zero-shot (batched greedy)
//!    next to the rule-based schedulers (NoBattery, GreedyPrice, TimeOfUse)
//!    inside that world — the reward-vs-intensity curve per scenario axis.
//!
//! Where the generalisation harness ([`crate::generalist`]) answers "does
//! one policy transfer to a handful of held-out worlds?", the severity sweep
//! answers the ROADMAP's follow-up: *how fast does it degrade as each kind
//! of stress intensifies?* — the repo's first robustness-curve artefact
//! (`results/severity_sweep.json` via `ect-bench`'s `severity_sweep` bin).
//!
//! Discounts are pinned to the never-discount schedule throughout, exactly
//! as in the generalisation harness, so the curves isolate battery
//! scheduling under world shift.

use crate::scenario_grid::scenario_stress;
use crate::scheduling::{run_hub_scheduler, OBS_WINDOW};
use crate::system::EctHubSystem;
use ect_data::scenario::randomized::{all_stress, ScenarioDistribution, StressAxis};
use ect_data::scenario::ScenarioSpec;
use ect_drl::generalist::{evaluate_generalist, train_generalist_source, GeneralistConfig};
use ect_drl::heuristics::{GreedyPrice, NoBattery, Scheduler, TimeOfUse};
use ect_drl::scenario_source::{ScenarioSource, WorldCache};
use ect_drl::ActorCritic;
use ect_env::env::ObsAugmentation;
use ect_env::fleet::fleet_env_for_worlds;
use ect_env::tariff::DiscountSchedule;
use ect_price::engine::NeverDiscount;
use ect_types::ids::HubId;
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Seed-stream separator for the randomised-generalist trainer
/// (decorrelated from the mixture-generalist and specialist streams).
const SEVERITY_SEED_STREAM: u64 = 0x5E7E_21A7;

/// Seed-stream separator for severity-ladder evaluation draws.
const SEVERITY_EVAL_STREAM: u64 = 0xA75E_7E21;

/// Knobs of [`run_severity_sweep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeverityOptions {
    /// Distribution the generalist trains on (the evaluation ladders always
    /// use the per-axis presets).
    pub train: ScenarioDistribution,
    /// Axes to sweep, in report order.
    pub axes: Vec<StressAxis>,
    /// Intensity ladder walked along every axis; must be strictly
    /// increasing within `[0, 1]`.
    pub intensities: Vec<f64>,
    /// Observation augmentation for the generalist.
    pub augmentation: ObsAugmentation,
    /// Mixture lanes per training episode (0 = one lane per hub).
    pub lanes: usize,
    /// Capacity of the LRU world cache backing training and evaluation.
    pub cache_capacity: usize,
}

impl Default for SeverityOptions {
    fn default() -> Self {
        Self {
            train: all_stress(),
            axes: StressAxis::ALL.to_vec(),
            intensities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            augmentation: ObsAugmentation::SCENARIO,
            lanes: 0,
            cache_capacity: 8,
        }
    }
}

impl SeverityOptions {
    /// Validates the sweep request.
    ///
    /// # Errors
    ///
    /// Returns [`ect_types::EctError::InvalidConfig`] for an invalid
    /// training distribution, no axes, a zero cache capacity, or an
    /// intensity ladder that is empty, out of `[0, 1]` or not strictly
    /// increasing (the monotone-ladder contract of the report).
    pub fn validate(&self) -> ect_types::Result<()> {
        self.train.validate()?;
        if self.axes.is_empty() {
            return Err(ect_types::EctError::InvalidConfig(
                "severity sweep needs at least one stress axis".into(),
            ));
        }
        if self.intensities.is_empty() {
            return Err(ect_types::EctError::InvalidConfig(
                "severity sweep needs at least one intensity".into(),
            ));
        }
        for pair in self.intensities.windows(2) {
            if pair[1] <= pair[0] {
                return Err(ect_types::EctError::InvalidConfig(format!(
                    "intensity ladder must be strictly increasing, got {} after {}",
                    pair[1], pair[0]
                )));
            }
        }
        for &t in &self.intensities {
            if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                return Err(ect_types::EctError::InvalidConfig(format!(
                    "intensity {t} outside [0, 1]"
                )));
            }
        }
        if self.cache_capacity == 0 {
            return Err(ect_types::EctError::InvalidConfig(
                "severity sweep needs a world cache capacity of at least one".into(),
            ));
        }
        Ok(())
    }
}

/// One rung of one axis's ladder. All rewards are average daily rewards
/// under the never-discount schedule (the paper's Table III metric).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeverityPoint {
    /// Stress intensity in `[0, 1]` along the axis.
    pub intensity: f64,
    /// Name of the deterministic spec evaluated at this rung.
    pub scenario: String,
    /// Zero-shot reward of the domain-randomised generalist.
    pub generalist: f64,
    /// Rule-based baselines, `(name, reward)` pairs.
    pub heuristics: Vec<(String, f64)>,
    /// The strongest rule-based baseline's reward.
    pub best_heuristic: f64,
    /// Fleet-minimum worst-case blackout endurance at this rung, hours.
    /// Scripted outages also feed the stepping reward directly (grid gone,
    /// unserved load penalised at the hub's value of lost load), so the
    /// outage axis moves `generalist` as well as these diagnostics.
    pub min_endurance_hours: f64,
    /// Fleet-total unserved energy across the rung's scripted outages, kWh.
    pub outage_unserved_kwh: f64,
}

/// The reward-vs-intensity curve of one stress axis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeverityCurve {
    /// Swept axis (display name, e.g. `price-shock`).
    pub axis: String,
    /// Name of the preset distribution whose extremes anchor the ladder.
    pub distribution: String,
    /// Ladder rungs in increasing-intensity order.
    pub points: Vec<SeverityPoint>,
}

impl SeverityCurve {
    /// Generalist reward lost between the first and last rung
    /// (positive = performance degrades as stress intensifies).
    pub fn degradation(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) => first.generalist - last.generalist,
            _ => f64::NAN,
        }
    }
}

/// The full severity-sweep report (`results/severity_sweep.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeverityReport {
    /// Name of the training distribution.
    pub train_distribution: String,
    /// Observation dimension of the trained generalist.
    pub obs_dim: usize,
    /// Lanes per training episode.
    pub lanes: usize,
    /// Training episodes (each drawing `lanes` fresh sampled scenarios).
    pub episodes: usize,
    /// Master seed of the trainer.
    pub seed: u64,
    /// Capacity of the world cache used throughout.
    pub cache_capacity: usize,
    /// Worlds actually generated (cache misses) across training and
    /// evaluation — the generation budget spent.
    pub worlds_generated: usize,
    /// Lookups served from the cache.
    pub cache_hits: usize,
    /// One reward-vs-intensity curve per swept axis.
    pub curves: Vec<SeverityCurve>,
}

impl SeverityReport {
    /// Mean generalist degradation across axes — the sweep's headline
    /// number (how much reward the policy loses from no stress to each
    /// axis's extreme, averaged).
    pub fn mean_degradation(&self) -> f64 {
        if self.curves.is_empty() {
            return f64::NAN;
        }
        self.curves
            .iter()
            .map(SeverityCurve::degradation)
            .sum::<f64>()
            / self.curves.len() as f64
    }
}

/// A trained domain-randomised generalist plus its severity scorecard.
///
/// Serialisable end to end, so the whole outcome (curves *and* trained
/// policy) can spill to the persistent artifact cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeverityOutcome {
    /// The serialisable report.
    pub report: SeverityReport,
    /// The trained shared policy.
    pub policy: ActorCritic,
}

/// Trains a generalist on sampled scenarios and walks the per-axis severity
/// ladders (see the module docs for the full protocol).
///
/// # Errors
///
/// Propagates option validation, world-generation, training and evaluation
/// failures.
#[deprecated(
    since = "0.2.0",
    note = "route through the unified experiment API: `Session::severity_sweep` \
            (crate::session) memoises the trained generalist and its curves"
)]
pub fn run_severity_sweep(
    system: &EctHubSystem,
    options: &SeverityOptions,
) -> ect_types::Result<SeverityOutcome> {
    severity_sweep_impl(system, options)
}

/// The sweep engine behind [`run_severity_sweep`] and
/// [`Session::severity_sweep`](crate::session::Session::severity_sweep).
pub(crate) fn severity_sweep_impl(
    system: &EctHubSystem,
    options: &SeverityOptions,
) -> ect_types::Result<SeverityOutcome> {
    options.validate()?;
    let horizon = system.world().horizon();
    let num_hubs = system.world().num_hubs() as usize;
    let lanes = if options.lanes == 0 {
        num_hubs
    } else {
        options.lanes
    };

    // All worlds — the sampled training curriculum *and* the evaluation
    // rungs, for the generalist and the rule-based anchors alike — flow
    // through one bounded cache: every distinct spec is generated once.
    let mut cache = WorldCache::new(system.config().world.clone(), options.cache_capacity)?;
    let augment = options.augmentation;
    // A fresh short-lived closure per call keeps the cache free for direct
    // lookups between factory uses.
    let fleet_for = |cache: &mut WorldCache,
                     specs: &[&ScenarioSpec],
                     rngs: &mut [EctRng]|
     -> ect_types::Result<ect_env::vec_env::FleetEnv> {
        // Resolve every lane's world first: the held Arcs keep a world
        // alive even if a sibling lookup evicts it from the cache.
        let worlds = cache.worlds_for(specs)?;
        let lane_worlds: Vec<(&ect_data::dataset::WorldDataset, HubId)> = worlds
            .iter()
            .enumerate()
            .map(|(i, world)| (&**world, HubId::new((i % num_hubs) as u32)))
            .collect();
        let discounts = vec![DiscountSchedule::none(horizon); specs.len()];
        fleet_env_for_worlds(
            &lane_worlds,
            0,
            horizon,
            &discounts,
            OBS_WINDOW,
            &augment,
            rngs,
        )
    };

    // Train on the continuous family: fresh specs every episode.
    let source = ScenarioSource::sampled(options.train.clone(), horizon);
    let config = GeneralistConfig {
        trainer: ect_drl::trainer::TrainerConfig {
            seed: system.config().seed ^ SEVERITY_SEED_STREAM,
            ..system.config().trainer.clone()
        },
        lanes,
    };
    let (policy, _history) = train_generalist_source(
        &config,
        &source,
        |_e: usize, specs: &[&ScenarioSpec], rngs: &mut [EctRng]| {
            fleet_for(&mut cache, specs, rngs)
        },
    )?;

    // Walk the ladders.
    let test_episodes = system.config().test_episodes;
    let eval_seed = config.trainer.seed ^ SEVERITY_EVAL_STREAM;
    let mut curves = Vec::with_capacity(options.axes.len());
    for &axis in &options.axes {
        let preset = axis.preset();
        let mut points = Vec::with_capacity(options.intensities.len());
        for &intensity in &options.intensities {
            let spec = preset.severity_spec(axis, intensity, horizon)?;
            // One cache lookup covers this rung end to end: the Arc below
            // seeds the generalist lanes *and* (cloned) the heuristic
            // system, so the world is generated at most once per rung.
            let rung_world = cache.world_for(&spec)?;
            let summary = evaluate_generalist(
                &policy,
                &spec,
                |_e: usize, specs: &[&ScenarioSpec], rngs: &mut [EctRng]| {
                    fleet_for(&mut cache, specs, rngs)
                },
                test_episodes,
                num_hubs,
                eval_seed,
            )?;

            // Rule-based anchors inside the same (cached) world.
            let spec_system = system.with_world(Arc::clone(&rung_world))?;
            let mut heuristics: Vec<(String, f64)> = Vec::new();
            let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
                Box::new(NoBattery),
                Box::new(GreedyPrice::default_thresholds()),
                Box::new(TimeOfUse),
            ];
            for scheduler in &mut schedulers {
                let mut total = 0.0;
                for hub in 0..num_hubs {
                    let cell = run_hub_scheduler(
                        &spec_system,
                        HubId::new(hub as u32),
                        &NeverDiscount,
                        scheduler.as_mut(),
                    )?;
                    total += cell.avg_daily_reward;
                }
                heuristics.push((scheduler.name().to_string(), total / num_hubs as f64));
            }
            let best_heuristic = heuristics
                .iter()
                .map(|(_, reward)| *reward)
                .fold(f64::NEG_INFINITY, f64::max);
            let stress = scenario_stress(&spec_system)?;
            points.push(SeverityPoint {
                intensity,
                scenario: spec.name,
                generalist: summary.avg_daily_reward,
                heuristics,
                best_heuristic,
                min_endurance_hours: stress
                    .iter()
                    .map(|s| s.worst_endurance_hours)
                    .fold(f64::INFINITY, f64::min),
                outage_unserved_kwh: stress.iter().map(|s| s.outage_unserved_kwh).sum(),
            });
        }
        curves.push(SeverityCurve {
            axis: axis.to_string(),
            distribution: preset.name,
            points,
        });
    }

    let report = SeverityReport {
        train_distribution: options.train.name.clone(),
        obs_dim: policy.state_dim(),
        lanes,
        episodes: config.trainer.episodes,
        seed: config.trainer.seed,
        cache_capacity: options.cache_capacity,
        worlds_generated: cache.generations(),
        cache_hits: cache.hits(),
        curves,
    };
    Ok(SeverityOutcome { report, policy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn tiny_system() -> EctHubSystem {
        let mut config = SystemConfig::miniature();
        config.world.num_hubs = 2;
        config.world.horizon_slots = 24 * 4;
        config.trainer.episodes = 2;
        config.test_episodes = 1;
        EctHubSystem::new(config).unwrap()
    }

    fn tiny_options() -> SeverityOptions {
        SeverityOptions {
            intensities: vec![0.0, 1.0],
            axes: vec![
                StressAxis::PriceShock,
                StressAxis::RenewableDrought,
                StressAxis::Outage,
            ],
            cache_capacity: 3,
            ..SeverityOptions::default()
        }
    }

    #[test]
    fn options_validation_rejects_bad_ladders() {
        let mut o = SeverityOptions {
            intensities: vec![],
            ..SeverityOptions::default()
        };
        assert!(o.validate().is_err());
        o.intensities = vec![0.5, 0.5];
        assert!(o.validate().is_err(), "non-strictly-increasing ladder");
        o.intensities = vec![0.8, 0.2];
        assert!(o.validate().is_err(), "decreasing ladder");
        o.intensities = vec![0.0, 1.5];
        assert!(o.validate().is_err(), "out-of-range rung");
        o.intensities = vec![0.0, 1.0];
        o.axes = vec![];
        assert!(o.validate().is_err(), "no axes");
        o.axes = vec![StressAxis::Outage];
        o.cache_capacity = 0;
        assert!(o.validate().is_err(), "zero cache capacity");
        o.cache_capacity = 2;
        o.validate().unwrap();
    }

    #[test]
    #[allow(deprecated)] // the legacy shim must stay green
    fn severity_sweep_produces_monotone_ladders_and_bounded_cache() {
        let system = tiny_system();
        let options = tiny_options();
        let outcome = run_severity_sweep(&system, &options).unwrap();
        let report = &outcome.report;
        assert_eq!(report.curves.len(), 3);
        assert_eq!(report.train_distribution, "all-stress");
        assert_eq!(outcome.policy.state_dim(), report.obs_dim);
        for (curve, axis) in report.curves.iter().zip(&options.axes) {
            assert_eq!(curve.axis, axis.to_string());
            assert_eq!(curve.points.len(), options.intensities.len());
            let mut last = f64::NEG_INFINITY;
            for (point, &intensity) in curve.points.iter().zip(&options.intensities) {
                assert!(
                    point.intensity > last,
                    "{}: ladder not monotone",
                    curve.axis
                );
                last = point.intensity;
                assert_eq!(point.intensity, intensity);
                assert!(point.generalist.is_finite(), "{}", curve.axis);
                assert_eq!(point.heuristics.len(), 3);
                assert!(point.best_heuristic.is_finite());
                assert!(point.min_endurance_hours >= 0.0);
            }
            assert!(curve.degradation().is_finite());
        }
        assert!(report.mean_degradation().is_finite());
        // The cache observed both training misses and evaluation hits, and
        // its generation budget covered every distinct world touched.
        assert!(report.worlds_generated > 0);
        assert!(report.cache_hits > 0);

        // The report serialises for results/severity_sweep.json.
        let json = serde_json::to_string(report).unwrap();
        let back: SeverityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.curves.len(), report.curves.len());

        // Determinism: the same system + options reproduce the same curves.
        let again = run_severity_sweep(&system, &options).unwrap();
        for (a, b) in report.curves.iter().zip(&again.report.curves) {
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.generalist.to_bits(), pb.generalist.to_bits());
            }
        }
    }
}
