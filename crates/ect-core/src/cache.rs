//! The persistent content-addressed artifact cache.
//!
//! The in-memory [`ArtifactStore`](crate::artifact::ArtifactStore) memoises
//! expensive intermediates *within* one process; this module spills those
//! artifacts to disk so repeated **processes** — CI smoke runs, iterative
//! benchmarking, the re-anchor loop — skip retraining entirely. Entries are
//! keyed by the same FNV-1a [`ArtifactKey`] the store uses, live under one
//! root directory (`results/cache/` for the bench harness) as
//! `<root>/<kind>/<digest>.ectc`, and carry a versioned header with build
//! provenance.
//!
//! Design contract, in order of importance:
//!
//! 1. **A cache must never turn into an error.** Corrupted, truncated,
//!    version-mismatched or otherwise unreadable entries are *misses* (and
//!    are swept from disk); failed writes are silently dropped. The worst a
//!    broken cache can do is cost a rebuild.
//! 2. **Hits are bit-identical to rebuilds.** Payloads are the workspace
//!    serde JSON of the artifact; the vendored `serde_json` emits finite
//!    `f64`s via shortest-round-trip formatting and parses them back through
//!    `str::parse::<f64>` (correctly rounded), so a disk round trip
//!    reproduces the artifact bit for bit — the same determinism contract
//!    that makes the in-memory store safe.
//! 3. **Publication is atomic.** Entries are written to a dot-prefixed
//!    temporary file in the same directory and `rename`d into place, so a
//!    concurrent reader (another experiment thread, another process) sees
//!    either the whole entry or no entry.
//! 4. **Disk usage is bounded.** After every write the cache evicts
//!    least-recently-used entries (reads touch the file modification time)
//!    until the total payload is within the byte budget.
//!
//! ## Entry format
//!
//! ```text
//! ECTC1\n
//! {"format":1,"crate_version":"0.1.0","kind":"generalist", ...}\n
//! <payload bytes: workspace serde JSON of the artifact>
//! ```
//!
//! The header records the cache-format version, the producing crate
//! version, the key (kind + digest), a payload checksum, and provenance
//! (producing experiment label, master seed, run scale). Any mismatch
//! between the header and the requested key, the running crate version, or
//! the payload checksum is a miss.

use crate::artifact::ArtifactKey;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Version of the on-disk entry format. Bump on any layout change: entries
/// written by other versions are treated as misses and swept.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Magic first line of every cache entry.
const MAGIC: &str = "ECTC1";

/// File extension of published entries (temporaries are dot-prefixed and
/// never scanned).
const ENTRY_EXT: &str = "ectc";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Build provenance stamped into every entry header: which experiment (or
/// session label) produced the artifact, under which master seed, at which
/// run scale. Purely informational — provenance does not participate in
/// lookup (the content-addressed key already covers every input).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheProvenance {
    /// Producing experiment / session label.
    pub experiment: String,
    /// Master seed of the producing configuration.
    pub seed: u64,
    /// Run scale label (`smoke` / `quick` / `paper`).
    pub scale: String,
}

impl Default for CacheProvenance {
    fn default() -> Self {
        Self {
            experiment: "session".into(),
            seed: 0,
            scale: "quick".into(),
        }
    }
}

/// The versioned header of one on-disk entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheHeader {
    /// Cache-format version ([`CACHE_FORMAT_VERSION`]).
    format: u32,
    /// `CARGO_PKG_VERSION` of the producing ect-core.
    crate_version: String,
    /// Artifact kind label of the key.
    kind: String,
    /// FNV-1a digest of the key, `{:016x}`.
    digest: String,
    /// Payload length in bytes (truncation check).
    payload_len: u64,
    /// FNV-1a checksum of the payload bytes (corruption check).
    payload_fnv: u64,
    /// Build provenance.
    provenance: CacheProvenance,
}

/// A size-bounded, content-addressed disk cache of serialised artifacts.
///
/// See the module docs for the format and the never-an-error contract. The
/// cache is cheap to clone (it is a path plus a budget); clones share the
/// same on-disk state.
#[derive(Debug, Clone)]
pub struct DiskCache {
    root: PathBuf,
    budget_bytes: u64,
}

impl DiskCache {
    /// Default eviction budget: 2 GiB of published entries.
    pub const DEFAULT_BUDGET_BYTES: u64 = 2 * 1024 * 1024 * 1024;

    /// A cache rooted at `root` with the default byte budget. The directory
    /// is created lazily on first write.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self::with_budget(root, Self::DEFAULT_BUDGET_BYTES)
    }

    /// A cache rooted at `root` evicting down to `budget_bytes` of
    /// published entries after every write.
    pub fn with_budget(root: impl Into<PathBuf>, budget_bytes: u64) -> Self {
        Self {
            root: root.into(),
            budget_bytes,
        }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The eviction byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    fn entry_path(&self, key: &ArtifactKey) -> PathBuf {
        self.root
            .join(key.kind)
            .join(format!("{:016x}.{ENTRY_EXT}", key.digest))
    }

    /// `true` when a published entry exists under `key` (without validating
    /// it — used to pick progress messages, not to promise a hit).
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.entry_path(key).is_file()
    }

    /// Loads and validates the payload stored under `key`. Any failure —
    /// missing file, bad magic, unparsable or mismatched header, foreign
    /// crate version, truncation, checksum mismatch — is a **miss**
    /// (`None`), and invalid entries are swept from disk. A hit touches the
    /// entry's modification time (the LRU clock).
    pub fn load(&self, key: &ArtifactKey) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let bytes = std::fs::read(&path).ok()?;
        match Self::validate(key, &bytes) {
            Some(payload_start) => {
                touch(&path);
                ect_obs::counter_add(
                    "cache.disk_read_bytes",
                    (bytes.len() - payload_start) as u64,
                );
                Some(bytes[payload_start..].to_vec())
            }
            None => {
                // Invalid entries are swept so they stop costing read time.
                let _ = std::fs::remove_file(&path);
                ect_obs::counter_add("cache.swept", 1);
                None
            }
        }
    }

    /// Validates an entry's bytes against `key`; returns the payload offset
    /// on success.
    fn validate(key: &ArtifactKey, bytes: &[u8]) -> Option<usize> {
        let magic_end = bytes.iter().position(|&b| b == b'\n')?;
        if &bytes[..magic_end] != MAGIC.as_bytes() {
            return None;
        }
        let header_end = magic_end + 1 + bytes[magic_end + 1..].iter().position(|&b| b == b'\n')?;
        let header_json = std::str::from_utf8(&bytes[magic_end + 1..header_end]).ok()?;
        let header: CacheHeader = serde_json::from_str(header_json).ok()?;
        let payload = &bytes[header_end + 1..];
        let valid = header.format == CACHE_FORMAT_VERSION
            && header.crate_version == env!("CARGO_PKG_VERSION")
            && header.kind == key.kind
            && header.digest == format!("{:016x}", key.digest)
            && header.payload_len == payload.len() as u64
            && header.payload_fnv == fnv1a(payload);
        valid.then_some(header_end + 1)
    }

    /// Publishes `payload` under `key`: atomic write-then-rename, followed
    /// by LRU eviction down to the byte budget. Best-effort — failures are
    /// silently dropped (the cache must never turn into an error).
    pub fn store(&self, key: &ArtifactKey, provenance: &CacheProvenance, payload: &[u8]) {
        let header = CacheHeader {
            format: CACHE_FORMAT_VERSION,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            kind: key.kind.to_string(),
            digest: format!("{:016x}", key.digest),
            payload_len: payload.len() as u64,
            payload_fnv: fnv1a(payload),
            provenance: provenance.clone(),
        };
        let Ok(header_json) = serde_json::to_string(&header) else {
            return;
        };
        let mut bytes = Vec::with_capacity(MAGIC.len() + header_json.len() + payload.len() + 2);
        bytes.extend_from_slice(MAGIC.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(header_json.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(payload);

        let path = self.entry_path(key);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        // Dot-prefixed temporary in the same directory (same filesystem, so
        // the rename is atomic); the pid suffix keeps concurrent processes
        // out of each other's way.
        let tmp = dir.join(format!(".tmp-{:016x}-{}", key.digest, std::process::id()));
        if std::fs::write(&tmp, &bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        ect_obs::counter_add("cache.disk_write_bytes", bytes.len() as u64);
        self.evict_to_budget(&path);
    }

    /// Every published entry as `(path, len, modified)`, oldest first.
    fn entries(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let mut out = Vec::new();
        let Ok(kinds) = std::fs::read_dir(&self.root) else {
            return out;
        };
        for kind in kinds.flatten() {
            let Ok(files) = std::fs::read_dir(kind.path()) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                    continue;
                }
                let Ok(meta) = file.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                let modified = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                out.push((path, meta.len(), modified));
            }
        }
        // Oldest first; ties (same-second writes) break by path so eviction
        // order is deterministic.
        out.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Evicts least-recently-used entries until the total size is within
    /// the budget. The just-written entry (`keep`) is evicted only as a
    /// last resort — when it alone exceeds the whole budget — so the bound
    /// holds unconditionally.
    fn evict_to_budget(&self, keep: &Path) {
        let entries = self.entries();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= self.budget_bytes {
            return;
        }
        for (path, len, _) in &entries {
            if total <= self.budget_bytes {
                break;
            }
            if path == keep {
                continue;
            }
            if std::fs::remove_file(path).is_ok() {
                total -= len;
                ect_obs::counter_add("cache.evictions", 1);
            }
        }
        if total > self.budget_bytes {
            let _ = std::fs::remove_file(keep);
            ect_obs::counter_add("cache.evictions", 1);
        }
    }

    /// Total bytes of published entries currently on disk.
    pub fn total_bytes(&self) -> u64 {
        self.entries().iter().map(|(_, len, _)| len).sum()
    }

    /// Number of published entries currently on disk.
    pub fn entry_count(&self) -> usize {
        self.entries().len()
    }
}

/// Best-effort LRU touch: bump the file's modification time to now.
fn touch(path: &Path) {
    if let Ok(file) = std::fs::File::options().write(true).open(path) {
        let _ = file.set_modified(SystemTime::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory under the crate's target dir (tests must
    /// not write outside the workspace).
    fn scratch(tag: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop();
        dir.push("target");
        dir.push("cache-tests");
        dir.push(format!(
            "{tag}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        dir
    }

    fn key(kind: &'static str, n: u64) -> ArtifactKey {
        ArtifactKey::of(kind, &n)
    }

    #[test]
    fn store_then_load_round_trips_the_payload() {
        let dir = scratch("roundtrip");
        let cache = DiskCache::new(&dir);
        let k = key("demo", 7);
        assert!(!cache.contains(&k));
        assert_eq!(cache.load(&k), None, "cold cache is a miss");

        let payload = b"{\"reward\":310.25}".to_vec();
        cache.store(&k, &CacheProvenance::default(), &payload);
        assert!(cache.contains(&k));
        assert_eq!(
            cache.load(&k),
            Some(payload.clone()),
            "hit returns the exact bytes"
        );
        assert_eq!(cache.entry_count(), 1);
        assert!(cache.total_bytes() > payload.len() as u64, "header counted");

        // A different key misses without touching the stored entry.
        assert_eq!(cache.load(&key("demo", 8)), None);
        assert_eq!(cache.load(&key("other", 7)), None);
        assert!(cache.contains(&k));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_truncated_and_mismatched_entries_are_misses_and_swept() {
        let dir = scratch("corrupt");
        let cache = DiskCache::new(&dir);
        let k = key("demo", 1);
        let payload = b"[1.0,2.0,3.0]".to_vec();
        let path = cache.entry_path(&k);

        type Corruption = Box<dyn Fn(Vec<u8>) -> Vec<u8>>;
        let corruptions: Vec<(&str, Corruption)> = vec![
            ("flipped payload byte", {
                Box::new(|mut b: Vec<u8>| {
                    let last = b.len() - 2;
                    b[last] ^= 0x20;
                    b
                })
            }),
            (
                "truncated file",
                Box::new(|b: Vec<u8>| b[..b.len() / 2].to_vec()),
            ),
            ("wrong magic", {
                Box::new(|mut b: Vec<u8>| {
                    b[4] = b'9'; // ECTC1 -> ECTC9
                    b
                })
            }),
            ("format-version mismatch", {
                Box::new(|b: Vec<u8>| {
                    let text = String::from_utf8(b).unwrap();
                    text.replacen("\"format\":1", "\"format\":999", 1)
                        .into_bytes()
                })
            }),
            ("crate-version mismatch", {
                Box::new(|b: Vec<u8>| {
                    let text = String::from_utf8(b).unwrap();
                    text.replacen(
                        &format!("\"crate_version\":\"{}\"", env!("CARGO_PKG_VERSION")),
                        "\"crate_version\":\"0.0.0-foreign\"",
                        1,
                    )
                    .into_bytes()
                })
            }),
            ("header not json", {
                Box::new(|b: Vec<u8>| {
                    let magic_end = b.iter().position(|&x| x == b'\n').unwrap();
                    let mut out = b[..=magic_end].to_vec();
                    out.extend_from_slice(b"not a header\n");
                    out.extend_from_slice(&b[magic_end + 1..]);
                    out
                })
            }),
            ("empty file", Box::new(|_| Vec::new())),
        ];
        for (what, corrupt) in corruptions {
            cache.store(&k, &CacheProvenance::default(), &payload);
            let healthy = std::fs::read(&path).unwrap();
            std::fs::write(&path, corrupt(healthy)).unwrap();
            assert_eq!(cache.load(&k), None, "{what} must be a miss");
            assert!(!path.exists(), "{what} must be swept from disk");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_keeps_total_within_budget_lru_first() {
        let dir = scratch("evict");
        // Each entry is ~190 bytes (header) + payload; a 1 KiB budget holds
        // only a few.
        let cache = DiskCache::with_budget(&dir, 1024);
        let payload = vec![b'x'; 200];
        for n in 0..8 {
            cache.store(&key("demo", n), &CacheProvenance::default(), &payload);
            assert!(
                cache.total_bytes() <= 1024,
                "budget exceeded after insert {n}: {}",
                cache.total_bytes()
            );
        }
        // The newest entry always survives its own insertion.
        assert!(cache.contains(&key("demo", 7)));
        // And an entry larger than the whole budget is not kept at all.
        cache.store(
            &key("huge", 0),
            &CacheProvenance::default(),
            &vec![b'y'; 4096],
        );
        assert!(!cache.contains(&key("huge", 0)));
        assert!(cache.total_bytes() <= 1024);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provenance_lands_in_the_header() {
        let dir = scratch("provenance");
        let cache = DiskCache::new(&dir);
        let k = key("generalist", 42);
        let prov = CacheProvenance {
            experiment: "run_all".into(),
            seed: 1234,
            scale: "smoke".into(),
        };
        cache.store(&k, &prov, b"{}");
        let raw = std::fs::read_to_string(cache.entry_path(&k)).unwrap();
        assert!(raw.starts_with("ECTC1\n"));
        assert!(raw.contains("\"experiment\":\"run_all\""));
        assert!(raw.contains("\"seed\":1234"));
        assert!(raw.contains("\"scale\":\"smoke\""));
        assert!(raw.contains("\"kind\":\"generalist\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite contract: a disk round trip returns the artifact bit
        /// for bit — including awkward `f64`s (negative zero, subnormals,
        /// values needing all 17 digits), which must survive the JSON
        /// emit/parse pair exactly.
        #[test]
        fn disk_round_trip_is_bit_identical(
            bits in collection::vec(0u64..u64::MAX, 1..32),
            seed in 0u64..u64::MAX,
        ) {
            let values: Vec<f64> = bits
                .iter()
                .map(|&b| f64::from_bits(b))
                .filter(|f| f.is_finite())
                .collect();
            let dir = scratch("prop-roundtrip");
            let cache = DiskCache::new(&dir);
            let k = ArtifactKey::of("prop", &seed);
            let json = serde_json::to_string(&values).unwrap();
            cache.store(&k, &CacheProvenance::default(), json.as_bytes());
            let loaded = cache.load(&k).expect("fresh entry hits");
            prop_assert_eq!(&loaded, &json.clone().into_bytes(), "bytes round-trip");
            let back: Vec<f64> = serde_json::from_str(std::str::from_utf8(&loaded).unwrap()).unwrap();
            prop_assert_eq!(back.len(), values.len());
            for (a, b) in back.iter().zip(&values) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "f64 must round-trip bitwise");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// Satellite contract: eviction never lets the published total
        /// exceed the configured byte budget, whatever the write sequence.
        #[test]
        fn eviction_never_exceeds_the_budget(
            budget in 256u64..4096,
            sizes in collection::vec(1usize..1024, 1..24),
        ) {
            let dir = scratch("prop-evict");
            let cache = DiskCache::with_budget(&dir, budget);
            for (n, size) in sizes.iter().enumerate() {
                let payload = vec![b'z'; *size];
                cache.store(&ArtifactKey::of("prop", &n), &CacheProvenance::default(), &payload);
                prop_assert!(
                    cache.total_bytes() <= budget,
                    "total {} exceeds budget {budget} after insert {n}",
                    cache.total_bytes()
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
