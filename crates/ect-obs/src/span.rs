//! RAII span guards with a thread-local span stack.
//!
//! Each thread keeps a stack of the spans currently open on it; a new span
//! parents to the stack top, and on drop a span subtracts its duration
//! from its own accumulated child time to report **self time** (time not
//! covered by nested spans). The stack is thread-local, so span entry/exit
//! takes no locks at all — the only synchronised step is handing the
//! finished record to the sink.

use crate::record::SpanRecord;
use crate::Telemetry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// One open span on this thread's stack.
struct Frame {
    id: u64,
    /// Microseconds spent in already-closed child spans.
    child_us: u64,
}

/// The small per-process id of the calling thread (1-based, assigned on
/// first use).
pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// An open span, closed (and emitted) on drop.
///
/// Obtained from [`fn@crate::span`]; when telemetry is off the guard is inert
/// — construction and drop are a no-op beyond one atomic load.
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    telemetry: Arc<Telemetry>,
    name: String,
    id: u64,
    parent: u64,
    start: Instant,
    start_us: u64,
    fields: Vec<(String, String)>,
}

impl SpanGuard {
    /// The inert guard handed out while telemetry is off.
    pub(crate) fn disabled() -> Self {
        Self { active: None }
    }

    /// Opens a span on the calling thread's stack.
    pub(crate) fn start(telemetry: Arc<Telemetry>, name: &str) -> Self {
        let id = telemetry.next_span_id();
        let start_us = telemetry.now_us();
        let parent = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().map_or(0, |frame| frame.id);
            stack.push(Frame { id, child_us: 0 });
            parent
        });
        Self {
            active: Some(ActiveSpan {
                telemetry,
                name: name.to_string(),
                id,
                parent,
                start: Instant::now(),
                start_us,
                fields: Vec::new(),
            }),
        }
    }

    /// Annotates the span with a `key=value` field (no-op when inert).
    pub fn field(mut self, key: &str, value: impl Into<String>) -> Self {
        if let Some(active) = &mut self.active {
            active.fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Annotates the span with a lazily computed field: `value` only runs
    /// when the span is recording, so hot paths pay nothing for the
    /// formatting while telemetry is off.
    pub fn field_with(mut self, key: &str, value: impl FnOnce() -> String) -> Self {
        if let Some(active) = &mut self.active {
            active.fields.push((key.to_string(), value()));
        }
        self
    }

    /// `true` when the guard is actually recording (telemetry was on at
    /// span entry).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_us = active.start.elapsed().as_micros() as u64;
        // Everything from here on is telemetry bookkeeping, charged to the
        // registry's overhead clock.
        let bookkeeping = Instant::now();
        let child_us = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally we are the stack top; a guard moved out of scope
            // order is found by id and unlinked from wherever it sits.
            match stack.iter().rposition(|frame| frame.id == active.id) {
                Some(position) => {
                    let frame = stack.remove(position);
                    if position > 0 {
                        stack[position - 1].child_us += dur_us;
                    }
                    frame.child_us
                }
                None => 0,
            }
        });
        let record = SpanRecord {
            name: active.name,
            id: active.id,
            parent: active.parent,
            thread: thread_id(),
            seq: 0, // assigned by the registry at emission
            start_us: active.start_us,
            dur_us,
            self_us: dur_us.saturating_sub(child_us),
            fields: active.fields,
        };
        active.telemetry.finish_span(record, bookkeeping);
    }
}
