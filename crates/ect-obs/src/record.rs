//! The wire schema of the telemetry sink: one serde-serialisable
//! [`Record`] per JSONL line.
//!
//! Every record kind is a named-field struct wrapped in an
//! externally-tagged enum variant, so a line reads
//! `{"Span":{"name":"run_dag.job", ...}}` — self-describing, greppable by
//! span name, and round-trippable through the workspace serde stack (the
//! `telemetry_determinism` suite pins the round trip).

use serde::{Deserialize, Serialize};

/// The run manifest: who produced this telemetry stream, under which
/// configuration. Written as the first record of every JSONL file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Session / experiment label (e.g. `run_all`).
    pub label: String,
    /// Master seed of the run's base configuration.
    pub seed: u64,
    /// Run scale label (`smoke` / `quick` / `paper`).
    pub scale: String,
    /// Worker-thread budget of the run.
    pub threads: usize,
    /// `git describe --always --dirty` of the producing checkout
    /// (`unknown` when git is unavailable).
    pub git_describe: String,
    /// `CARGO_PKG_VERSION` of the producing workspace.
    pub cargo_version: String,
}

impl Default for RunManifest {
    fn default() -> Self {
        Self {
            label: "session".into(),
            seed: 0,
            scale: "quick".into(),
            threads: 1,
            git_describe: "unknown".into(),
            cargo_version: env!("CARGO_PKG_VERSION").into(),
        }
    }
}

/// One completed span: a named, timed region of work with hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (dotted, e.g. `run_dag.job`, `artifact.build`).
    pub name: String,
    /// Process-unique span id (1-based).
    pub id: u64,
    /// Id of the enclosing span on the same thread, `0` for roots.
    pub parent: u64,
    /// Small per-process thread id (1-based, assigned on first use).
    pub thread: u64,
    /// Global emission sequence number (total order over all records).
    pub seq: u64,
    /// Start offset from the telemetry epoch, microseconds.
    pub start_us: u64,
    /// Wall duration, microseconds.
    pub dur_us: u64,
    /// Duration minus the time spent in child spans, microseconds.
    pub self_us: u64,
    /// Free-form `key=value` annotations.
    pub fields: Vec<(String, String)>,
}

/// One point-in-time event (a progress message, a cache tier resolution).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Event name (dotted, e.g. `artifact.disk_hit`, `progress`).
    pub name: String,
    /// Small per-process thread id.
    pub thread: u64,
    /// Global emission sequence number.
    pub seq: u64,
    /// Offset from the telemetry epoch, microseconds.
    pub at_us: u64,
    /// Free-form `key=value` annotations.
    pub fields: Vec<(String, String)>,
}

/// Final value of one named counter (written at end of run).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Final snapshot of one named histogram (written at end of run).
/// Buckets are sparse `(upper_bound, count)` pairs over the fixed
/// power-of-two grid of [`crate::metrics::Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramRecord {
    /// Histogram name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub total: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// One line of the telemetry stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Record {
    /// The run manifest (first line of every stream).
    Manifest(RunManifest),
    /// A completed span.
    Span(SpanRecord),
    /// A point-in-time event.
    Event(EventRecord),
    /// An end-of-run counter value.
    Counter(CounterRecord),
    /// An end-of-run histogram snapshot.
    Histogram(HistogramRecord),
}

impl Record {
    /// The record's name, when it has one (spans, events, metrics).
    pub fn name(&self) -> Option<&str> {
        match self {
            Record::Manifest(_) => None,
            Record::Span(s) => Some(&s.name),
            Record::Event(e) => Some(&e.name),
            Record::Counter(c) => Some(&c.name),
            Record::Histogram(h) => Some(&h.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_record_kind_round_trips_through_serde() {
        let records = vec![
            Record::Manifest(RunManifest {
                label: "run_all".into(),
                seed: 42,
                scale: "smoke".into(),
                threads: 4,
                git_describe: "abc1234-dirty".into(),
                cargo_version: "0.1.0".into(),
            }),
            Record::Span(SpanRecord {
                name: "run_dag.job".into(),
                id: 3,
                parent: 1,
                thread: 2,
                seq: 17,
                start_us: 1_000,
                dur_us: 2_500,
                self_us: 2_100,
                fields: vec![("job".into(), "5".into()), ("id".into(), "fleet".into())],
            }),
            Record::Event(EventRecord {
                name: "artifact.disk_hit".into(),
                thread: 1,
                seq: 18,
                at_us: 3_500,
                fields: vec![("kind".into(), "generalist".into())],
            }),
            Record::Counter(CounterRecord {
                name: "dispatch.steals".into(),
                value: 9,
            }),
            Record::Histogram(HistogramRecord {
                name: "artifact.build_us".into(),
                count: 2,
                total: 300,
                buckets: vec![(127, 1), (255, 1)],
            }),
        ];
        for record in records {
            let line = serde_json::to_string(&record).unwrap();
            let back: Record = serde_json::from_str(&line).unwrap();
            assert_eq!(back, record, "{line}");
        }
    }

    #[test]
    fn record_names_identify_the_payload() {
        assert_eq!(Record::Manifest(RunManifest::default()).name(), None);
        assert_eq!(
            Record::Counter(CounterRecord {
                name: "cache.evictions".into(),
                value: 0
            })
            .name(),
            Some("cache.evictions")
        );
    }
}
