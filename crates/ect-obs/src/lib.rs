//! ECT-Obs: hand-rolled structured telemetry for the hub pipeline.
//!
//! The vendored-only build environment has no `tracing` crate, so this
//! crate provides the slice of an instrumentation stack the workspace
//! needs: a thread-safe [`Telemetry`] registry with hierarchical **spans**
//! (name, parent, start/duration, thread id, `key=value` fields), atomic
//! **counters** and fixed-bucket **histograms**, and a **run manifest**
//! (session label, seed, scale, threads, git describe, crate version).
//! Records stream to a buffered JSONL [`Sink`] — one self-describing JSON
//! line per record — or into memory for tests.
//!
//! # The zero-cost-when-off contract
//!
//! Instrumented code calls the free functions ([`fn@span`], [`event`],
//! [`counter_add`], [`with`]); each starts with one relaxed atomic load of
//! the global enable flag and returns immediately while no registry is
//! installed. No locks are taken, no allocations happen, and nothing on
//! the step-kernel fast path is instrumented at all — so telemetry can
//! never perturb results: every artifact stays bit-identical with
//! telemetry on or off (pinned by `tests/telemetry_determinism.rs`).
//!
//! # Install / shutdown
//!
//! ```
//! use std::sync::Arc;
//!
//! let telemetry = Arc::new(ect_obs::Telemetry::to_memory(Default::default()));
//! ect_obs::install(Arc::clone(&telemetry));
//! {
//!     let _span = ect_obs::span("demo.work").field("answer", "42");
//!     ect_obs::counter_add("demo.events", 1);
//! }
//! let stopped = ect_obs::uninstall().expect("was installed");
//! assert_eq!(stopped.counter_value("demo.events"), 1);
//! assert!(!ect_obs::enabled());
//! ```
//!
//! The registry is process-global (one telemetry stream per run, the
//! `run_all` model); [`install`]/[`uninstall`] are test-friendly in that
//! uninstalling returns the registry for inspection.

pub mod metrics;
pub mod record;
pub mod sink;
pub mod span;
pub mod summary;

pub use metrics::{Counter, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use record::{CounterRecord, EventRecord, HistogramRecord, Record, RunManifest, SpanRecord};
pub use sink::Sink;
pub use span::SpanGuard;
pub use summary::{SpanAgg, Summary};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// The process-global telemetry registry: spans, metrics, and the sink.
pub struct Telemetry {
    manifest: RunManifest,
    epoch: Instant,
    sink: Sink,
    next_span: AtomicU64,
    next_seq: AtomicU64,
    /// Nanoseconds spent on telemetry bookkeeping (span finishing, sink
    /// writes) — the numerator of `telemetry_overhead_pct`.
    overhead_ns: AtomicU64,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    span_aggs: Mutex<BTreeMap<String, SpanAgg>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("manifest", &self.manifest)
            .field(
                "spans",
                &self.next_span.load(Ordering::Relaxed).saturating_sub(1),
            )
            .field("records", &self.next_seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    fn with_sink(manifest: RunManifest, sink: Sink) -> Self {
        let telemetry = Self {
            manifest,
            epoch: Instant::now(),
            sink,
            next_span: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            overhead_ns: AtomicU64::new(0),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            span_aggs: Mutex::new(BTreeMap::new()),
        };
        telemetry
            .sink
            .write(&Record::Manifest(telemetry.manifest.clone()));
        telemetry
    }

    /// A registry collecting records in memory (tests, summaries).
    pub fn to_memory(manifest: RunManifest) -> Self {
        Self::with_sink(manifest, Sink::Memory(Mutex::new(Vec::new())))
    }

    /// A registry dropping every record (overhead probes).
    pub fn to_null(manifest: RunManifest) -> Self {
        Self::with_sink(manifest, Sink::Null)
    }

    /// A registry streaming JSONL to `path` (parents created, file
    /// truncated).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures.
    pub fn to_jsonl(manifest: RunManifest, path: &Path) -> std::io::Result<Self> {
        Ok(Self::with_sink(manifest, Sink::jsonl(path)?))
    }

    /// The run manifest this registry was built with.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Microseconds since the registry was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn next_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn note_overhead(&self, since: Instant) {
        self.overhead_ns
            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total microseconds charged to telemetry bookkeeping so far.
    pub fn overhead_us(&self) -> u64 {
        self.overhead_ns.load(Ordering::Relaxed) / 1_000
    }

    /// The handle of counter `name`, created at zero on first use. Hot
    /// loops should look the handle up once and [`Counter::add`] lock-free.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name.to_string()).or_default())
    }

    /// Adds `delta` to counter `name` (registry-lock lookup per call; use
    /// [`Telemetry::counter`] handles in loops).
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// The current value of counter `name` (zero when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().get(name).map_or(0, |c| c.get())
    }

    /// The handle of histogram `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().entry(name.to_string()).or_default())
    }

    /// Records one sample into histogram `name`.
    pub fn histogram_record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Emits a point-in-time event.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        let t0 = Instant::now();
        let record = Record::Event(EventRecord {
            name: name.to_string(),
            thread: span::thread_id(),
            seq: self.next_seq(),
            at_us: self.now_us(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
        self.sink.write(&record);
        self.note_overhead(t0);
    }

    /// Completes a span: stamps the sequence number, folds the timing into
    /// the per-name aggregate, writes the record. Called by
    /// [`SpanGuard`]'s drop; `bookkeeping` is when the drop started doing
    /// telemetry work (for the overhead clock).
    pub(crate) fn finish_span(&self, mut record: SpanRecord, bookkeeping: Instant) {
        record.seq = self.next_seq();
        {
            let mut aggs = self.span_aggs.lock();
            let agg = aggs.entry(record.name.clone()).or_default();
            agg.count += 1;
            agg.total_us += record.dur_us;
            agg.self_us += record.self_us;
        }
        self.sink.write(&Record::Span(record));
        self.note_overhead(bookkeeping);
    }

    /// Writes the end-of-run counter and histogram records and flushes the
    /// sink. Call once after the instrumented run quiesces.
    pub fn flush_metrics(&self) {
        for (name, counter) in self.counters.lock().iter() {
            self.sink.write(&Record::Counter(counter.record(name)));
        }
        for (name, histogram) in self.histograms.lock().iter() {
            self.sink
                .write(&Record::Histogram(histogram.snapshot().record(name)));
        }
        self.sink.flush();
    }

    /// The aggregate view: per-span-name totals (sorted by self time,
    /// descending) and counter values.
    pub fn summary(&self) -> Summary {
        let mut spans: Vec<(String, SpanAgg)> = self
            .span_aggs
            .lock()
            .iter()
            .map(|(name, agg)| (name.clone(), *agg))
            .collect();
        spans.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then_with(|| a.0.cmp(&b.0)));
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect();
        Summary { spans, counters }
    }

    /// The records collected so far (memory sink only; empty otherwise).
    pub fn records(&self) -> Vec<Record> {
        self.sink.records()
    }
}

// ---------------------------------------------------------------------------
// Global install
// ---------------------------------------------------------------------------

/// Fast gate: one relaxed load decides whether any telemetry code runs.
static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT: RwLock<Option<Arc<Telemetry>>> = RwLock::new(None);

/// Installs `telemetry` as the process-global registry and enables the
/// fast gate. Replaces any previous registry.
pub fn install(telemetry: Arc<Telemetry>) {
    let mut current = CURRENT
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *current = Some(telemetry);
    ENABLED.store(true, Ordering::Release);
}

/// Disables the fast gate and removes the global registry, returning it
/// for final flushing/inspection. `None` when nothing was installed.
pub fn uninstall() -> Option<Arc<Telemetry>> {
    ENABLED.store(false, Ordering::Release);
    CURRENT
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
}

/// `true` while a registry is installed — one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` against the installed registry, or returns `None` without
/// taking any lock when telemetry is off.
pub fn with<R>(f: impl FnOnce(&Telemetry) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let current = CURRENT
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    current.as_ref().map(|telemetry| f(telemetry))
}

/// Opens a span named `name` on the calling thread (inert guard when
/// telemetry is off).
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    let current = CURRENT
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match current.as_ref() {
        Some(telemetry) => SpanGuard::start(Arc::clone(telemetry), name),
        None => SpanGuard::disabled(),
    }
}

/// Emits a point-in-time event (no-op when telemetry is off).
pub fn event(name: &str, fields: &[(&str, &str)]) {
    if !enabled() {
        return;
    }
    with(|telemetry| telemetry.event(name, fields));
}

/// Adds `delta` to the named counter (no-op when telemetry is off).
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with(|telemetry| telemetry.counter_add(name, delta));
}

/// Records one sample into the named histogram (no-op when telemetry is
/// off).
pub fn histogram_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with(|telemetry| telemetry.histogram_record(name, value));
}

// ---------------------------------------------------------------------------
// Serialized terminal output
// ---------------------------------------------------------------------------

static PRINT: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The process-wide single-writer lock for terminal output. Concurrent
/// experiment jobs hold this across their stdout/stderr writes so lines
/// from different experiments never interleave mid-block. Always available
/// — serialized output is wanted with telemetry on *or* off.
pub fn print_lock() -> std::sync::MutexGuard<'static, ()> {
    PRINT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Reports a progress message: emitted as a `progress` telemetry event
/// (fields `label`, `message`) when a registry is installed. The caller's
/// terminal sink should write under [`print_lock`] — see
/// `Session::report` in ect-core, the thin view that keeps the historical
/// `stderr_progress` behaviour on top of this layer.
pub fn progress(label: &str, message: &str) {
    event("progress", &[("label", label), ("message", message)]);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-install tests share the process-wide registry; serialise
    /// them so parallel test threads never observe each other's installs.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let _gate = serial();
        uninstall(); // clean slate whatever an earlier test left installed
        assert!(!enabled());
        let guard = span("off.span");
        assert!(!guard.is_recording());
        drop(guard);
        event("off.event", &[("k", "v")]);
        counter_add("off.counter", 5);
        histogram_record("off.hist", 5);
        assert_eq!(with(|_| ()).map(|()| true), None);
    }

    #[test]
    fn spans_nest_and_report_self_time() {
        let _gate = serial();
        let telemetry = Arc::new(Telemetry::to_memory(RunManifest::default()));
        install(Arc::clone(&telemetry));
        {
            let _outer = span("outer").field("who", "test");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        uninstall();

        let records = telemetry.records();
        assert!(matches!(records[0], Record::Manifest(_)));
        let spans: Vec<&SpanRecord> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner closes first; outer parents it.
        let (inner, outer) = (spans[0], spans[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.fields, vec![("who".to_string(), "test".to_string())]);
        assert!(outer.dur_us >= inner.dur_us);
        assert!(
            outer.self_us <= outer.dur_us - inner.dur_us,
            "self time must exclude the child ({} vs {} - {})",
            outer.self_us,
            outer.dur_us,
            inner.dur_us
        );
        assert!(inner.seq < outer.seq, "closing order is the seq order");

        let summary = telemetry.summary();
        assert_eq!(summary.spans.len(), 2);
        let outer_agg = summary
            .spans
            .iter()
            .find(|(name, _)| name == "outer")
            .unwrap();
        assert_eq!(outer_agg.1.count, 1);
    }

    #[test]
    fn counters_histograms_and_flush_land_in_the_sink() {
        let _gate = serial();
        let telemetry = Arc::new(Telemetry::to_memory(RunManifest::default()));
        install(Arc::clone(&telemetry));
        counter_add("demo.jobs", 3);
        counter_add("demo.jobs", 4);
        histogram_record("demo.latency", 100);
        progress("unit", "halfway there");
        uninstall();
        telemetry.flush_metrics();

        assert_eq!(telemetry.counter_value("demo.jobs"), 7);
        assert_eq!(telemetry.counter_value("untouched"), 0);
        let records = telemetry.records();
        assert!(records.iter().any(|r| matches!(
            r,
            Record::Counter(c) if c.name == "demo.jobs" && c.value == 7
        )));
        assert!(records.iter().any(|r| matches!(
            r,
            Record::Histogram(h) if h.name == "demo.latency" && h.count == 1
        )));
        assert!(records.iter().any(|r| matches!(
            r,
            Record::Event(e) if e.name == "progress"
                && e.fields.contains(&("message".to_string(), "halfway there".to_string()))
        )));
        assert!(telemetry
            .summary()
            .counters
            .contains(&("demo.jobs".to_string(), 7)));
    }

    #[test]
    fn spans_on_parallel_threads_stay_independent() {
        let _gate = serial();
        let telemetry = Arc::new(Telemetry::to_memory(RunManifest::default()));
        install(Arc::clone(&telemetry));
        std::thread::scope(|scope| {
            for n in 0..4 {
                scope.spawn(move || {
                    let _span = span("worker").field("n", n.to_string());
                });
            }
        });
        uninstall();
        let spans: Vec<SpanRecord> = telemetry
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 4);
        for span in &spans {
            assert_eq!(span.parent, 0, "cross-thread spans must not parent");
        }
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids are unique");
    }
}
