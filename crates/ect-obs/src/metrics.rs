//! Atomic counters and fixed-bucket histograms.
//!
//! Both types are lock-free on the record path (relaxed atomic adds) and
//! live behind `Arc` handles in the [`Telemetry`](crate::Telemetry)
//! registry, so hot loops can look a handle up once and add without ever
//! touching the registry lock. Histograms use a fixed power-of-two bucket
//! grid: bucket `i ≥ 1` holds values with bit length `i`
//! (`2^(i-1) ≤ v < 2^i`), bucket `0` holds zero, and the last bucket is
//! open-ended — merging two histograms is an element-wise add, so merge is
//! associative and commutative by construction (pinned by the proptests
//! below).

use crate::record::{CounterRecord, HistogramRecord};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (relaxed; counters are aggregates, not synchronisation).
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// The counter as its end-of-run record.
    pub fn record(&self, name: &str) -> CounterRecord {
        CounterRecord {
            name: name.to_string(),
            value: self.get(),
        }
    }
}

/// Number of histogram buckets: zero + one per bit length, last open-ended.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket power-of-two histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    total: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `value`: `0` for zero, otherwise the bit length
    /// clamped into the open-ended last bucket.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive `(lower, upper)` value bounds of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        if index == 0 {
            (0, 0)
        } else if index == HISTOGRAM_BUCKETS - 1 {
            (1 << (index - 1), u64::MAX)
        } else {
            (1 << (index - 1), (1 << index) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds another histogram into this one (element-wise add).
    pub fn merge_from(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// A consistent-enough point-in-time snapshot (relaxed loads; exact
    /// once writers have quiesced, which is when snapshots are taken).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A plain-data snapshot of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub total: u64,
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            total: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// The element-wise sum of two snapshots.
    #[must_use]
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        out.count += other.count;
        out.total += other.total;
        for (mine, theirs) in out.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        out
    }

    /// The snapshot as its end-of-run record (sparse non-empty buckets).
    pub fn record(&self, name: &str) -> HistogramRecord {
        HistogramRecord {
            name: name.to_string(),
            count: self.count,
            total: self.total,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(index, &count)| (Histogram::bucket_bounds(index).1, count))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate_atomically_across_threads() {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        counter.add(2);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 8_000);
        assert_eq!(counter.record("jobs").value, 8_000);
        assert_eq!(counter.record("jobs").name, "jobs");
    }

    #[test]
    fn histogram_buckets_partition_the_u64_range() {
        // Bucket bounds tile the axis: each upper bound + 1 is the next
        // lower bound, starting at zero and ending open.
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(3), (4, 7));
        for index in 0..HISTOGRAM_BUCKETS - 1 {
            let (_, upper) = Histogram::bucket_bounds(index);
            let (next_lower, _) = Histogram::bucket_bounds(index + 1);
            assert_eq!(upper + 1, next_lower, "bucket {index}");
        }
        assert_eq!(Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);
        // The range strategy below never draws u64::MAX itself; pin the
        // open-ended top bucket explicitly.
        let top = Histogram::bucket_index(u64::MAX);
        let (lower, upper) = Histogram::bucket_bounds(top);
        assert_eq!(top, HISTOGRAM_BUCKETS - 1);
        assert_eq!(lower, 1 << (HISTOGRAM_BUCKETS - 2));
        assert_eq!(upper, u64::MAX);
    }

    #[test]
    fn snapshots_render_sparse_records() {
        let hist = Histogram::new();
        hist.record(0);
        hist.record(5);
        hist.record(5);
        let record = hist.snapshot().record("latency_us");
        assert_eq!(record.count, 3);
        assert_eq!(record.total, 10);
        assert_eq!(record.buckets, vec![(0, 1), (7, 2)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite contract: every value lands in a bucket whose bounds
        /// contain it.
        #[test]
        fn bucket_bounds_contain_their_values(value in 0u64..u64::MAX) {
            let index = Histogram::bucket_index(value);
            let (lower, upper) = Histogram::bucket_bounds(index);
            prop_assert!(lower <= value && value <= upper,
                "{value} outside bucket {index} = [{lower}, {upper}]");
        }

        /// Satellite contract: merge is associative (and agrees with
        /// recording the concatenated sample streams).
        #[test]
        fn merge_is_associative_and_matches_recording(
            a in proptest::collection::vec(0u64..1_000_000, 0..32),
            b in proptest::collection::vec(0u64..1_000_000, 0..32),
            c in proptest::collection::vec(0u64..1_000_000, 0..32),
        ) {
            let hist_of = |samples: &[u64]| {
                let h = Histogram::new();
                for &s in samples {
                    h.record(s);
                }
                h.snapshot()
            };
            let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
            let left = ha.merged(&hb).merged(&hc);
            let right = ha.merged(&hb.merged(&hc));
            prop_assert_eq!(left, right, "merge must be associative");

            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(left, hist_of(&all), "merge must equal one recording pass");

            // The atomic merge path agrees with the snapshot-level one.
            let target = Histogram::new();
            for &s in &a { target.record(s); }
            let other = Histogram::new();
            for &s in b.iter().chain(&c) { other.record(s); }
            target.merge_from(&other);
            prop_assert_eq!(target.snapshot(), left);
        }

        /// Satellite contract: a counter is a plain sum — order and
        /// thread-partitioning of the deltas never change the total.
        #[test]
        fn counter_totals_are_partition_invariant(
            deltas in proptest::collection::vec(0u64..1_000_000, 0..64),
            split in 0usize..64,
        ) {
            let split = split.min(deltas.len());
            let sequential = Counter::new();
            for &d in &deltas {
                sequential.add(d);
            }
            let (front, back) = deltas.split_at(split);
            let partitioned = Counter::new();
            std::thread::scope(|scope| {
                scope.spawn(|| for &d in front { partitioned.add(d); });
                scope.spawn(|| for &d in back { partitioned.add(d); });
            });
            let expected: u64 = deltas.iter().sum();
            prop_assert_eq!(sequential.get(), expected);
            prop_assert_eq!(partitioned.get(), expected);
        }
    }
}
