//! Telemetry sinks: where emitted [`Record`]s go.
//!
//! The JSONL sink is a single buffered writer behind one mutex — every
//! record is serialised *outside* the lock and appended as one line inside
//! it, so concurrent emitters never interleave partial lines (the
//! single-writer contract the progress-serialisation satellite relies on).

use crate::record::Record;
use parking_lot::Mutex;
use std::io::Write;
use std::path::Path;

/// A destination for telemetry records.
#[derive(Debug)]
pub enum Sink {
    /// Drop everything (used by overhead probes).
    Null,
    /// Collect records in memory (tests and summaries).
    Memory(Mutex<Vec<Record>>),
    /// Append one JSON line per record to a buffered file writer.
    Jsonl(Mutex<std::io::BufWriter<std::fs::File>>),
}

impl Sink {
    /// A sink appending JSONL to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures.
    pub fn jsonl(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        Ok(Sink::Jsonl(Mutex::new(std::io::BufWriter::new(file))))
    }

    /// Writes one record (best-effort for the file sink: telemetry must
    /// never turn into an error).
    pub fn write(&self, record: &Record) {
        match self {
            Sink::Null => {}
            Sink::Memory(records) => records.lock().push(record.clone()),
            Sink::Jsonl(writer) => {
                let Ok(mut line) = serde_json::to_string(record) else {
                    return;
                };
                line.push('\n');
                let _ = writer.lock().write_all(line.as_bytes());
            }
        }
    }

    /// Flushes buffered output (no-op for null/memory sinks).
    pub fn flush(&self) {
        if let Sink::Jsonl(writer) = self {
            let _ = writer.lock().flush();
        }
    }

    /// The records collected so far (`Memory` sink only; empty otherwise).
    pub fn records(&self) -> Vec<Record> {
        match self {
            Sink::Memory(records) => records.lock().clone(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CounterRecord;

    fn counter(name: &str, value: u64) -> Record {
        Record::Counter(CounterRecord {
            name: name.into(),
            value,
        })
    }

    #[test]
    fn memory_sink_collects_and_null_sink_drops() {
        let memory = Sink::Memory(Mutex::new(Vec::new()));
        memory.write(&counter("a", 1));
        memory.write(&counter("b", 2));
        memory.flush();
        assert_eq!(memory.records().len(), 2);

        let null = Sink::Null;
        null.write(&counter("a", 1));
        assert!(null.records().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_parsable_line_per_record() {
        let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        path.pop();
        path.pop();
        path.push("target");
        path.push("obs-tests");
        path.push(format!("sink-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let sink = Sink::jsonl(&path).unwrap();
        for n in 0..5 {
            sink.write(&counter("n", n));
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (n, line) in lines.iter().enumerate() {
            let back: Record = serde_json::from_str(line).unwrap();
            assert_eq!(back, counter("n", n as u64));
        }
        let _ = std::fs::remove_file(&path);
    }
}
