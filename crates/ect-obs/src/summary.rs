//! End-of-run aggregation: per-span-name totals and the printed table.

/// Aggregated timings of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed spans under this name.
    pub count: u64,
    /// Sum of wall durations, microseconds.
    pub total_us: u64,
    /// Sum of self times (duration minus child spans), microseconds.
    pub self_us: u64,
}

/// The end-of-run aggregate view of a telemetry registry.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Per-span-name aggregates, sorted by self time, descending.
    pub spans: Vec<(String, SpanAgg)>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl Summary {
    /// The top `n` spans by self time.
    pub fn top_spans(&self, n: usize) -> &[(String, SpanAgg)] {
        &self.spans[..n.min(self.spans.len())]
    }

    /// Renders the summary as the table `run_all` prints: top spans by
    /// self time plus the counter block.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::from("telemetry summary (top spans by self time):\n");
        out.push_str(&format!(
            "  {:<28} {:>7} {:>12} {:>12}\n",
            "span", "count", "total_ms", "self_ms"
        ));
        for (name, agg) in self.top_spans(top) {
            out.push_str(&format!(
                "  {:<28} {:>7} {:>12.1} {:>12.1}\n",
                name,
                agg.count,
                agg.total_us as f64 / 1e3,
                agg.self_us as f64 / 1e3
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<28} {value:>7}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_render_top_spans_and_counters() {
        let summary = Summary {
            spans: vec![
                (
                    "ppo.update".into(),
                    SpanAgg {
                        count: 8,
                        total_us: 9_000,
                        self_us: 9_000,
                    },
                ),
                (
                    "run_dag.job".into(),
                    SpanAgg {
                        count: 3,
                        total_us: 14_000,
                        self_us: 5_000,
                    },
                ),
            ],
            counters: vec![("dispatch.steals".into(), 4)],
        };
        assert_eq!(summary.top_spans(1).len(), 1);
        assert_eq!(summary.top_spans(10).len(), 2);
        let table = summary.render(5);
        assert!(table.contains("ppo.update"));
        assert!(table.contains("run_dag.job"));
        assert!(table.contains("dispatch.steals"));
        assert!(table.contains("9.0"), "{table}");
    }
}
