//! Trainable parameters and initialisation.

use crate::matrix::Matrix;
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// A trainable tensor: value plus accumulated gradient.
///
/// Layers accumulate into [`Param::grad`] during their backward pass;
/// optimizers consume and reset it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient of the loss w.r.t. [`Param::value`].
    pub grad: Matrix,
}

impl Param {
    /// Creates a parameter from an initial value with zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Xavier/Glorot-uniform initialised parameter, the standard choice for
    /// tanh/sigmoid networks.
    pub fn xavier(rows: usize, cols: usize, rng: &mut EctRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let mut value = Matrix::zeros(rows, cols);
        for v in value.as_mut_slice() {
            *v = rng.uniform_in(-bound, bound);
        }
        Self::new(value)
    }

    /// He/Kaiming-normal initialised parameter, the standard choice for ReLU
    /// networks.
    pub fn kaiming(rows: usize, cols: usize, rng: &mut EctRng) -> Self {
        let std = (2.0 / rows as f64).sqrt();
        let mut value = Matrix::zeros(rows, cols);
        for v in value.as_mut_slice() {
            *v = rng.normal(0.0, std);
        }
        Self::new(value)
    }

    /// Zero-initialised parameter (biases).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::new(Matrix::zeros(rows, cols))
    }

    /// Small-normal initialised parameter (embedding tables).
    pub fn small_normal(rows: usize, cols: usize, std: f64, rng: &mut EctRng) -> Self {
        let mut value = Matrix::zeros(rows, cols);
        for v in value.as_mut_slice() {
            *v = rng.normal(0.0, std);
        }
        Self::new(value)
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` when the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Anything that exposes trainable parameters to an optimizer.
///
/// Visit order must be stable across calls — optimizers key their per-
/// parameter state (Adam moments) on it.
pub trait Parameterized {
    /// Calls `f` once per parameter, in a stable order.
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Clears all gradients.
    fn zero_grad(&mut self) {
        self.for_each_param(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.len());
        n
    }

    /// `true` if any parameter or gradient is NaN/∞ (divergence detector).
    fn any_non_finite(&mut self) -> bool {
        let mut bad = false;
        self.for_each_param(&mut |p| {
            if !p.value.all_finite() || !p.grad.all_finite() {
                bad = true;
            }
        });
        bad
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    fn grad_norm(&mut self) -> f64 {
        let mut acc = 0.0;
        self.for_each_param(&mut |p| {
            acc += p.grad.as_slice().iter().map(|g| g * g).sum::<f64>();
        });
        acc.sqrt()
    }

    /// Scales all gradients so their global L2 norm is at most `max_norm`.
    fn clip_grad_norm(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            self.for_each_param(&mut |p| p.grad.scale(scale));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two {
        a: Param,
        b: Param,
    }

    impl Parameterized for Two {
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn two() -> Two {
        Two {
            a: Param::new(Matrix::filled(2, 2, 1.0)),
            b: Param::new(Matrix::filled(1, 3, 2.0)),
        }
    }

    #[test]
    fn param_count_sums_elements() {
        assert_eq!(two().param_count(), 7);
    }

    #[test]
    fn zero_grad_clears() {
        let mut t = two();
        t.a.grad = Matrix::filled(2, 2, 5.0);
        t.zero_grad();
        assert_eq!(t.a.grad, Matrix::zeros(2, 2));
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut t = two();
        t.a.grad = Matrix::filled(2, 2, 3.0); // contributes 4*9=36
        t.b.grad = Matrix::filled(1, 3, 4.0); // contributes 3*16=48
        let norm = t.grad_norm();
        assert!((norm - (84.0f64).sqrt()).abs() < 1e-12);
        t.clip_grad_norm(1.0);
        assert!((t.grad_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clip_leaves_small_grads_alone() {
        let mut t = two();
        t.a.grad = Matrix::filled(2, 2, 0.1);
        let before = t.grad_norm();
        t.clip_grad_norm(10.0);
        assert_eq!(t.grad_norm(), before);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = two();
        assert!(!t.any_non_finite());
        t.b.value[(0, 0)] = f64::INFINITY;
        assert!(t.any_non_finite());
    }

    #[test]
    fn initializers_have_sane_scale() {
        let mut rng = ect_types::rng::EctRng::seed_from(1);
        let p = Param::xavier(64, 64, &mut rng);
        assert!(p.value.max_abs() <= (6.0f64 / 128.0).sqrt() + 1e-12);
        let k = Param::kaiming(64, 64, &mut rng);
        assert!(k.value.max_abs() < 1.0);
        let z = Param::zeros(3, 3);
        assert_eq!(z.value.max_abs(), 0.0);
    }
}
