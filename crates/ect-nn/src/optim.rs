//! First-order optimizers.
//!
//! The paper trains its models with Adam (learning rate 0.01 for the pricing
//! models, 1e-3 for ECT-DRL, weight decay 1e-4); we implement Adam with
//! decoupled weight decay plus plain SGD as a simple comparator.

use crate::matrix::Matrix;
use crate::param::Parameterized;
use serde::{Deserialize, Serialize};

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Step size.
    pub learning_rate: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub epsilon: f64,
    /// Decoupled (AdamW-style) weight decay.
    pub weight_decay: f64,
}

impl AdamConfig {
    /// The paper's pricing-model setting (lr 0.01, weight decay 1e-4).
    pub fn paper_pricing() -> Self {
        Self {
            learning_rate: 0.01,
            ..Self::default()
        }
    }

    /// The paper's DRL setting (lr 1e-3, weight decay 1e-4).
    pub fn paper_drl() -> Self {
        Self {
            learning_rate: 1e-3,
            ..Self::default()
        }
    }

    /// Overrides the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 1e-4,
        }
    }
}

/// Adam optimizer with decoupled weight decay.
///
/// Per-parameter moment state is keyed on the stable visit order of
/// [`Parameterized::for_each_param`] and lazily allocated on the first step.
#[derive(Debug, Clone, Default)]
pub struct Adam {
    config: AdamConfig,
    step_count: u64,
    moments: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Creates an optimizer.
    pub fn new(config: AdamConfig) -> Self {
        Self {
            config,
            step_count: 0,
            moments: Vec::new(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Adjusts the learning rate in place (for schedules); moment state is
    /// preserved.
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.config.learning_rate = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Applies one update using the gradients accumulated in `model`, then
    /// clears them.
    pub fn step<M: Parameterized>(&mut self, model: &mut M) {
        self.step_count += 1;
        let t = self.step_count as f64;
        let c = &self.config;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);

        let mut index = 0;
        let moments = &mut self.moments;
        model.for_each_param(&mut |p| {
            if moments.len() <= index {
                moments.push((
                    Matrix::zeros(p.value.rows(), p.value.cols()),
                    Matrix::zeros(p.value.rows(), p.value.cols()),
                ));
            }
            let (m, v) = &mut moments[index];
            debug_assert_eq!(m.shape(), p.value.shape(), "optimizer state shape drift");
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_mut_slice();
            let m = m.as_mut_slice();
            let v = v.as_mut_slice();
            for i in 0..value.len() {
                let g = grad[i];
                m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g;
                v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                value[i] -= c.learning_rate
                    * (m_hat / (v_hat.sqrt() + c.epsilon) + c.weight_decay * value[i]);
                grad[i] = 0.0;
            }
            index += 1;
        });
    }
}

/// Plain stochastic gradient descent (no momentum).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Step size.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(learning_rate: f64) -> Self {
        Self { learning_rate }
    }

    /// Applies one update and clears gradients.
    pub fn step<M: Parameterized>(&mut self, model: &mut M) {
        let lr = self.learning_rate;
        model.for_each_param(&mut |p| {
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_mut_slice();
            for i in 0..value.len() {
                value[i] -= lr * grad[i];
                grad[i] = 0.0;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    /// Minimises f(w) = ||w − target||².
    struct Quad {
        w: Param,
        target: Matrix,
    }

    impl Quad {
        fn new() -> Self {
            Self {
                w: Param::new(Matrix::from_rows(&[&[5.0, -3.0]])),
                target: Matrix::from_rows(&[&[1.0, 2.0]]),
            }
        }

        fn loss(&self) -> f64 {
            self.w
                .value
                .sub(&self.target)
                .as_slice()
                .iter()
                .map(|d| d * d)
                .sum()
        }

        fn accumulate_grad(&mut self) {
            let g = self.w.value.sub(&self.target).map(|d| 2.0 * d);
            self.w.grad.add_assign(&g);
        }
    }

    impl Parameterized for Quad {
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.w);
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut q = Quad::new();
        let mut opt = Adam::new(AdamConfig {
            learning_rate: 0.1,
            weight_decay: 0.0,
            ..AdamConfig::default()
        });
        for _ in 0..500 {
            q.accumulate_grad();
            opt.step(&mut q);
        }
        assert!(q.loss() < 1e-6, "loss {}", q.loss());
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut q = Quad::new();
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            q.accumulate_grad();
            opt.step(&mut q);
        }
        assert!(q.loss() < 1e-9, "loss {}", q.loss());
    }

    #[test]
    fn step_clears_gradients() {
        let mut q = Quad::new();
        q.accumulate_grad();
        let mut opt = Adam::new(AdamConfig::default());
        opt.step(&mut q);
        assert_eq!(q.w.grad.max_abs(), 0.0);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // With zero gradient, decay alone should pull weights toward 0.
        let mut q = Quad::new();
        let before = q.w.value.max_abs();
        let mut opt = Adam::new(AdamConfig {
            learning_rate: 0.1,
            weight_decay: 0.5,
            ..AdamConfig::default()
        });
        opt.step(&mut q); // grad is zero here
        assert!(q.w.value.max_abs() < before);
    }

    #[test]
    fn paper_presets_match_text() {
        assert_eq!(AdamConfig::paper_pricing().learning_rate, 0.01);
        assert_eq!(AdamConfig::paper_drl().learning_rate, 1e-3);
        assert_eq!(AdamConfig::paper_pricing().weight_decay, 1e-4);
    }
}
