//! Minimal neural-network substrate for the ECT-Hub reproduction.
//!
//! The paper trains three model families with PyTorch: the NCF rating model
//! used for strata pre-labeling and as the uplift-baseline base model, the
//! CF-MTL-style ECT-Price network, and the PPO actor-critic of ECT-DRL.
//! No deep-learning crate is available offline, so this crate provides the
//! required stack from scratch:
//!
//! * [`matrix`] — dense row-major `f64` matrices with the handful of BLAS-like
//!   kernels the models need;
//! * [`param`] — trainable parameters, initialisers and the
//!   [`param::Parameterized`] visitor trait optimizers operate on;
//! * [`layers`] — [`layers::Linear`], [`layers::Activation`],
//!   [`layers::Embedding`] and row-softmax helpers, each with explicit
//!   forward/backward passes;
//! * [`mlp`] — a sequential feed-forward network;
//! * [`ncf`] — Neural Collaborative Filtering (He et al. 2017);
//! * [`loss`] — MSE / BCE / Huber losses with analytic gradients;
//! * [`optim`] — Adam (with the paper's hyper-parameters as presets) and SGD;
//! * [`gradcheck`] — finite-difference gradient verification used throughout
//!   the test suites.
//!
//! Every backward pass in this workspace is validated against central finite
//! differences; see the `gradcheck` tests in each module.
//!
//! # Example
//!
//! ```
//! use ect_nn::layers::ActivationKind;
//! use ect_nn::loss::mse;
//! use ect_nn::matrix::Matrix;
//! use ect_nn::mlp::Mlp;
//! use ect_nn::optim::{Adam, AdamConfig};
//! use ect_types::rng::EctRng;
//!
//! let mut rng = EctRng::seed_from(7);
//! let mut net = Mlp::new(&[1, 8, 1], ActivationKind::Tanh, &mut rng);
//! let mut opt = Adam::new(AdamConfig::default().with_learning_rate(0.05));
//! let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0]]);
//! let y = x.map(|v| 2.0 * v - 1.0);
//! for _ in 0..200 {
//!     let pred = net.forward(&x);
//!     let (_, grad) = mse(&pred, &y);
//!     net.backward(&grad);
//!     opt.step(&mut net);
//! }
//! let (final_loss, _) = mse(&net.infer(&x), &y);
//! assert!(final_loss < 0.05);
//! ```

pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod ncf;
pub mod optim;
pub mod param;

pub use layers::{softmax_backward, softmax_rows, Activation, ActivationKind, Embedding, Linear};
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use ncf::{Ncf, NcfConfig};
pub use optim::{Adam, AdamConfig, Sgd};
pub use param::{Param, Parameterized};
