//! Sequential multi-layer perceptron.

use crate::layers::{Activation, ActivationKind, Linear};
use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// One stage of a [`Mlp`].
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Stage {
    Linear(Linear),
    Activation(Activation),
}

/// A feed-forward network built from [`Linear`] and [`Activation`] stages.
///
/// # Example
///
/// ```
/// use ect_nn::mlp::Mlp;
/// use ect_nn::layers::ActivationKind;
/// use ect_nn::matrix::Matrix;
/// use ect_types::rng::EctRng;
///
/// let mut rng = EctRng::seed_from(0);
/// let mut net = Mlp::new(&[4, 16, 2], ActivationKind::Relu, &mut rng);
/// let x = Matrix::zeros(3, 4);
/// let y = net.forward(&x);
/// assert_eq!(y.shape(), (3, 2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    stages: Vec<Stage>,
    in_dim: usize,
    out_dim: usize,
}

impl Mlp {
    /// Builds an MLP with the given layer widths and hidden activation; the
    /// output layer is linear (no activation).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], hidden: ActivationKind, rng: &mut EctRng) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let mut stages = Vec::new();
        for i in 0..widths.len() - 1 {
            let layer = if hidden == ActivationKind::Relu {
                Linear::kaiming(widths[i], widths[i + 1], rng)
            } else {
                Linear::new(widths[i], widths[i + 1], rng)
            };
            stages.push(Stage::Linear(layer));
            if i + 2 < widths.len() {
                stages.push(Stage::Activation(Activation::new(hidden)));
            }
        }
        Self {
            stages,
            in_dim: widths[0],
            out_dim: *widths.last().expect("non-empty widths"),
        }
    }

    /// Appends a final activation (e.g. sigmoid for probability outputs).
    pub fn with_output_activation(mut self, kind: ActivationKind) -> Self {
        self.stages.push(Stage::Activation(Activation::new(kind)));
        self
    }

    /// Overrides one bias entry of the final linear stage (output-prior
    /// initialisation, e.g. biasing a softmax head toward one class).
    ///
    /// # Panics
    ///
    /// Panics if the network has no linear stage or `output` is out of
    /// range.
    pub fn set_output_bias(&mut self, output: usize, value: f64) {
        let last_linear = self
            .stages
            .iter_mut()
            .rev()
            .find_map(|s| match s {
                Stage::Linear(l) => Some(l),
                Stage::Activation(_) => None,
            })
            .expect("MLP without a linear stage");
        last_linear.set_bias(output, value);
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Training-mode forward pass (caches intermediates for backward).
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for stage in &mut self.stages {
            x = match stage {
                Stage::Linear(l) => l.forward(&x),
                Stage::Activation(a) => a.forward(&x),
            };
        }
        x
    }

    /// Inference-mode forward pass (no caches touched).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for stage in &self.stages {
            x = match stage {
                Stage::Linear(l) => l.infer(&x),
                Stage::Activation(a) => a.infer(&x),
            };
        }
        x
    }

    /// Backward pass; returns `dL/dinput`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Mlp::forward`].
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for stage in self.stages.iter_mut().rev() {
            g = match stage {
                Stage::Linear(l) => l.backward(&g),
                Stage::Activation(a) => a.backward(&g),
            };
        }
        g
    }
}

impl Parameterized for Mlp {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for stage in &mut self.stages {
            if let Stage::Linear(l) = stage {
                l.for_each_param(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_difference;
    use crate::loss::mse;
    use crate::optim::{Adam, AdamConfig};

    #[test]
    fn shapes_flow_through() {
        let mut rng = EctRng::seed_from(5);
        let mut net = Mlp::new(&[3, 8, 8, 2], ActivationKind::Tanh, &mut rng);
        assert_eq!(net.in_dim(), 3);
        assert_eq!(net.out_dim(), 2);
        let y = net.forward(&Matrix::zeros(7, 3));
        assert_eq!(y.shape(), (7, 2));
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = EctRng::seed_from(6);
        let mut net = Mlp::new(&[2, 4, 1], ActivationKind::Sigmoid, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -0.5], &[1.0, 2.0]]);
        assert_eq!(net.forward(&x), net.infer(&x));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = EctRng::seed_from(7);
        let mut net = Mlp::new(&[3, 5, 2], ActivationKind::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, -0.4, 0.9], &[1.2, 0.0, -0.6]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);

        let pred = net.forward(&x);
        let (_, grad) = mse(&pred, &target);
        net.backward(&grad);

        let err = finite_difference(&mut net, |m| mse(&m.infer(&x), &target).0, 1e-6);
        assert!(err < 1e-5, "max grad error {err}");
    }

    #[test]
    fn gradients_with_output_activation_match_finite_difference() {
        let mut rng = EctRng::seed_from(8);
        let mut net = Mlp::new(&[2, 6, 1], ActivationKind::Relu, &mut rng)
            .with_output_activation(ActivationKind::Sigmoid);
        let x = Matrix::from_rows(&[&[0.4, -1.0], &[0.2, 0.7], &[-0.9, 0.1]]);
        let target = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0]]);

        let pred = net.forward(&x);
        let (_, grad) = mse(&pred, &target);
        net.backward(&grad);

        let err = finite_difference(&mut net, |m| mse(&m.infer(&x), &target).0, 1e-6);
        assert!(err < 1e-5, "max grad error {err}");
    }

    #[test]
    fn can_fit_xor() {
        let mut rng = EctRng::seed_from(9);
        let mut net = Mlp::new(&[2, 8, 1], ActivationKind::Tanh, &mut rng)
            .with_output_activation(ActivationKind::Sigmoid);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut opt = Adam::new(AdamConfig {
            learning_rate: 0.05,
            weight_decay: 0.0,
            ..AdamConfig::default()
        });
        let mut final_loss = f64::MAX;
        for _ in 0..800 {
            let pred = net.forward(&x);
            let (loss, grad) = mse(&pred, &y);
            final_loss = loss;
            net.backward(&grad);
            opt.step(&mut net);
        }
        assert!(final_loss < 0.01, "xor loss {final_loss}");
        let pred = net.infer(&x);
        assert!(pred[(0, 0)] < 0.2 && pred[(3, 0)] < 0.2);
        assert!(pred[(1, 0)] > 0.8 && pred[(2, 0)] > 0.8);
    }

    #[test]
    fn param_count_matches_architecture() {
        let mut rng = EctRng::seed_from(10);
        let mut net = Mlp::new(&[3, 5, 2], ActivationKind::Relu, &mut rng);
        // (3*5 + 5) + (5*2 + 2) = 20 + 12
        assert_eq!(net.param_count(), 32);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_width() {
        let mut rng = EctRng::seed_from(11);
        let _ = Mlp::new(&[3], ActivationKind::Relu, &mut rng);
    }
}
