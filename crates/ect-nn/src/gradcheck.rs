//! Finite-difference gradient verification.
//!
//! Every analytic backward pass in this workspace is checked against central
//! finite differences. This module provides the generic checker used by unit
//! tests in `ect-nn`, `ect-price` and `ect-drl`.

use crate::matrix::Matrix;
use crate::param::Parameterized;

/// Verifies accumulated gradients against central finite differences.
///
/// The model must already hold the analytic gradients of `loss` in its
/// parameters (i.e. run `forward` + `backward` first, without zeroing). The
/// `loss` closure must recompute the *same* scalar loss from scratch using
/// inference-only paths (no caching side effects).
///
/// Returns the maximum absolute error over all parameter entries.
pub fn finite_difference<M, F>(model: &mut M, loss: F, eps: f64) -> f64
where
    M: Parameterized,
    F: Fn(&mut M) -> f64,
{
    // Snapshot analytic gradients first: we must restore them untouched.
    let mut analytic: Vec<Matrix> = Vec::new();
    model.for_each_param(&mut |p| analytic.push(p.grad.clone()));

    let mut max_err: f64 = 0.0;

    // We cannot hold two mutable borrows, so perturb by index bookkeeping:
    // walk parameters one at a time using an outer index.
    let n_params = {
        let mut n = 0;
        model.for_each_param(&mut |_| n += 1);
        n
    };

    assert_eq!(
        analytic.len(),
        n_params,
        "gradient snapshot count must match parameter count"
    );
    for (pi, analytic_grad) in analytic.iter().enumerate() {
        let n_entries = entry_count(model, pi);
        for ei in 0..n_entries {
            let original = read_entry(model, pi, ei);

            write_entry(model, pi, ei, original + eps);
            let up = loss(model);
            write_entry(model, pi, ei, original - eps);
            let down = loss(model);
            write_entry(model, pi, ei, original);

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic_grad.as_slice()[ei];
            max_err = max_err.max((numeric - a).abs());
        }
    }

    // Restore analytic gradients (loss() evaluations may have clobbered them
    // if the closure runs training-mode passes).
    let mut it = analytic.into_iter();
    model.for_each_param(&mut |p| {
        p.grad = it.next().expect("gradient snapshot length");
    });

    max_err
}

fn entry_count<M: Parameterized>(model: &mut M, param_index: usize) -> usize {
    let mut count = 0;
    let mut i = 0;
    model.for_each_param(&mut |p| {
        if i == param_index {
            count = p.len();
        }
        i += 1;
    });
    count
}

fn read_entry<M: Parameterized>(model: &mut M, param_index: usize, entry: usize) -> f64 {
    let mut value = 0.0;
    let mut i = 0;
    model.for_each_param(&mut |p| {
        if i == param_index {
            value = p.value.as_slice()[entry];
        }
        i += 1;
    });
    value
}

fn write_entry<M: Parameterized>(model: &mut M, param_index: usize, entry: usize, value: f64) {
    let mut i = 0;
    model.for_each_param(&mut |p| {
        if i == param_index {
            p.value.as_mut_slice()[entry] = value;
        }
        i += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    /// y = sum(w .* w) has gradient 2w.
    struct Quadratic {
        w: Param,
    }

    impl Parameterized for Quadratic {
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.w);
        }
    }

    #[test]
    fn detects_correct_gradient() {
        let mut q = Quadratic {
            w: Param::new(Matrix::from_rows(&[&[1.0, -2.0, 3.0]])),
        };
        // Analytic gradient of sum(w²) is 2w.
        q.w.grad = q.w.value.map(|v| 2.0 * v);
        let err = finite_difference(
            &mut q,
            |m| m.w.value.as_slice().iter().map(|v| v * v).sum(),
            1e-6,
        );
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn detects_wrong_gradient() {
        let mut q = Quadratic {
            w: Param::new(Matrix::from_rows(&[&[1.0, -2.0, 3.0]])),
        };
        q.w.grad = q.w.value.map(|v| 3.0 * v); // deliberately wrong
        let err = finite_difference(
            &mut q,
            |m| m.w.value.as_slice().iter().map(|v| v * v).sum(),
            1e-6,
        );
        assert!(err > 0.5, "err {err} should flag the bug");
    }

    #[test]
    fn restores_values_and_grads() {
        let mut q = Quadratic {
            w: Param::new(Matrix::from_rows(&[&[1.0, -2.0, 3.0]])),
        };
        q.w.grad = q.w.value.map(|v| 2.0 * v);
        let value_before = q.w.value.clone();
        let grad_before = q.w.grad.clone();
        let _ = finite_difference(
            &mut q,
            |m| m.w.value.as_slice().iter().map(|v| v * v).sum(),
            1e-6,
        );
        assert_eq!(q.w.value, value_before);
        assert_eq!(q.w.grad, grad_before);
    }
}
