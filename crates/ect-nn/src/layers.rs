//! Layers with explicit forward/backward passes.
//!
//! The workspace trains three model families (NCF ratings, the CF-MTL
//! ECT-Price network and the PPO actor-critic); all are compositions of
//! [`Linear`], [`Activation`] and [`Embedding`] layers. Each layer caches
//! what its backward pass needs, so the calling convention is always
//! `forward(...)` then at most one `backward(...)`.

use crate::matrix::Matrix;
use crate::param::{Param, Parameterized};
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// Fully connected layer `y = x W + b`.
///
/// `x` is `batch × in_dim`, `W` is `in_dim × out_dim`, `b` is `1 × out_dim`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    bias: Param,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut EctRng) -> Self {
        Self {
            weight: Param::xavier(in_dim, out_dim, rng),
            bias: Param::zeros(1, out_dim),
            cached_input: None,
        }
    }

    /// Creates a layer with He-initialised weights (preferred before ReLU).
    pub fn kaiming(in_dim: usize, out_dim: usize, rng: &mut EctRng) -> Self {
        Self {
            weight: Param::kaiming(in_dim, out_dim, rng),
            bias: Param::zeros(1, out_dim),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Read-only view of the weights (for tests/inspection).
    pub fn weight(&self) -> &Matrix {
        &self.weight.value
    }

    /// Overrides one bias entry. Used for output-prior initialisation, e.g.
    /// biasing a policy head toward a safe default action.
    ///
    /// # Panics
    ///
    /// Panics if `output >= out_dim`.
    pub fn set_bias(&mut self, output: usize, value: f64) {
        assert!(output < self.out_dim(), "bias index {output} out of range");
        self.bias.value[(0, output)] = value;
    }

    /// Forward pass; caches the input for the backward pass.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.weight.value);
        out.add_row_broadcast(&self.bias.value);
        self.cached_input = Some(input.clone());
        out
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.weight.value);
        out.add_row_broadcast(&self.bias.value);
        out
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Linear::forward`].
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("Linear::backward before forward");
        // dW = xᵀ · dY
        self.weight
            .grad
            .add_assign(&input.transpose_matmul(grad_out));
        // db = column sums of dY
        self.bias.grad.add_assign(&grad_out.col_sum());
        // dX = dY · Wᵀ
        grad_out.matmul_transpose(&self.weight.value)
    }
}

impl Parameterized for Linear {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

/// Supported element-wise nonlinearities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// Stateless nonlinearity with cached outputs for the backward pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Activation {
    kind: ActivationKind,
    #[serde(skip)]
    cached_output: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            cached_output: None,
        }
    }

    /// Which nonlinearity this layer applies.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    fn apply(kind: ActivationKind, x: f64) -> f64 {
        match kind {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *output* value `y`.
    fn derivative_from_output(kind: ActivationKind, y: f64) -> f64 {
        match kind {
            ActivationKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Sigmoid => y * (1.0 - y),
            ActivationKind::Tanh => 1.0 - y * y,
        }
    }

    /// Forward pass; caches the output.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let out = input.map(|x| Self::apply(self.kind, x));
        self.cached_output = Some(out.clone());
        out
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        input.map(|x| Self::apply(self.kind, x))
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Activation::forward`].
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let out = self
            .cached_output
            .as_ref()
            .expect("Activation::backward before forward");
        grad_out.zip_with(out, |g, y| g * Self::derivative_from_output(self.kind, y))
    }
}

/// Lookup-table layer mapping integer ids to dense vectors.
///
/// Used for station and time-slot features in the NCF and CF-MTL models
/// (Fig. 9 of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    table: Param,
    #[serde(skip)]
    cached_indices: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates a `vocab × dim` embedding with small-normal initialisation
    /// (std 0.1).
    pub fn new(vocab: usize, dim: usize, rng: &mut EctRng) -> Self {
        Self::with_std(vocab, dim, 0.1, rng)
    }

    /// Creates a `vocab × dim` embedding with the given init std. Larger
    /// scales (≈0.5) make id-conditioned signal visible to downstream layers
    /// from the first steps, which matters for short training budgets.
    pub fn with_std(vocab: usize, dim: usize, std: f64, rng: &mut EctRng) -> Self {
        Self {
            table: Param::small_normal(vocab, dim, std, rng),
            cached_indices: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Looks up a batch of ids, producing `batch × dim`; caches indices.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    pub fn forward(&mut self, indices: &[usize]) -> Matrix {
        let out = self.lookup(indices);
        self.cached_indices = Some(indices.to_vec());
        out
    }

    /// Lookup without caching (inference only).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    pub fn infer(&self, indices: &[usize]) -> Matrix {
        self.lookup(indices)
    }

    fn lookup(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.dim());
        for (row, &id) in indices.iter().enumerate() {
            assert!(
                id < self.vocab(),
                "embedding id {id} out of vocab {}",
                self.vocab()
            );
            out.row_mut(row).copy_from_slice(self.table.value.row(id));
        }
        out
    }

    /// Backward pass: scatters `grad_out` rows into the table gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Embedding::forward`] or with a gradient of
    /// the wrong batch size.
    pub fn backward(&mut self, grad_out: &Matrix) {
        let indices = self
            .cached_indices
            .as_ref()
            .expect("Embedding::backward before forward");
        assert_eq!(
            grad_out.rows(),
            indices.len(),
            "embedding grad batch mismatch"
        );
        for (row, &id) in indices.iter().enumerate() {
            let g = grad_out.row(row);
            let dst = self.table.grad.row_mut(id);
            for (d, &v) in dst.iter_mut().zip(g) {
                *d += v;
            }
        }
    }
}

impl Parameterized for Embedding {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

/// Row-wise softmax (each row becomes a probability distribution).
///
/// Numerically stabilised by subtracting the row max before exponentiation.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        let out_row = out.row_mut(r);
        for (o, &v) in out_row.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        for o in out_row.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// Backward pass through a row-wise softmax.
///
/// Given `probs = softmax(logits)` and `dL/dprobs`, computes `dL/dlogits`
/// using `dL/dz_i = p_i (g_i − Σ_j g_j p_j)`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn softmax_backward(probs: &Matrix, grad_probs: &Matrix) -> Matrix {
    assert_eq!(probs.shape(), grad_probs.shape(), "softmax_backward shapes");
    let mut out = Matrix::zeros(probs.rows(), probs.cols());
    for r in 0..probs.rows() {
        let p = probs.row(r);
        let g = grad_probs.row(r);
        let dot: f64 = p.iter().zip(g).map(|(&pi, &gi)| pi * gi).sum();
        for ((o, &pi), &gi) in out.row_mut(r).iter_mut().zip(p).zip(g) {
            *o = pi * (gi - dot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_difference;
    use proptest::prelude::*;

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = EctRng::seed_from(1);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let y = l.forward(&x);
        // With identity-ish inputs, y rows are the weight rows plus bias (0).
        assert_eq!(y.row(0), l.weight().row(0));
        assert_eq!(y.row(1), l.weight().row(1));
        assert_eq!(l.infer(&x), y);
    }

    #[test]
    fn linear_gradients_match_finite_difference() {
        let mut rng = EctRng::seed_from(2);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.3, -0.7]]);
        // Loss = sum(y); then dL/dy = ones.
        let y = l.forward(&x);
        let ones = Matrix::filled(y.rows(), y.cols(), 1.0);
        let grad_x = l.backward(&ones);

        let max_err = finite_difference(&mut l, |layer| layer.infer(&x).sum(), 1e-6);
        assert!(max_err < 1e-5, "param grad error {max_err}");

        // dL/dx for sum loss is row-sum of Wᵀ: each input grad row = W · 1.
        for r in 0..2 {
            for c in 0..3 {
                let expect: f64 = (0..2).map(|j| l.weight()[(c, j)]).sum();
                assert!((grad_x[(r, c)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn activation_values() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let mut relu = Activation::new(ActivationKind::Relu);
        assert_eq!(relu.forward(&x), Matrix::from_rows(&[&[0.0, 0.0, 2.0]]));
        let mut sig = Activation::new(ActivationKind::Sigmoid);
        let s = sig.forward(&x);
        assert!((s[(0, 1)] - 0.5).abs() < 1e-12);
        let mut tanh = Activation::new(ActivationKind::Tanh);
        let t = tanh.forward(&x);
        assert!((t[(0, 2)] - 2.0f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn activation_backward_matches_numeric_derivative() {
        for kind in [
            ActivationKind::Relu,
            ActivationKind::Sigmoid,
            ActivationKind::Tanh,
        ] {
            let mut act = Activation::new(kind);
            let x = Matrix::from_rows(&[&[0.7, -0.3, 1.9]]);
            let _ = act.forward(&x);
            let g = act.backward(&Matrix::filled(1, 3, 1.0));
            let eps = 1e-6;
            for c in 0..3 {
                let mut xp = x.clone();
                xp[(0, c)] += eps;
                let mut xm = x.clone();
                xm[(0, c)] -= eps;
                let num = (act.infer(&xp).sum() - act.infer(&xm).sum()) / (2.0 * eps);
                assert!(
                    (g[(0, c)] - num).abs() < 1e-6,
                    "{kind:?} col {c}: {} vs {num}",
                    g[(0, c)]
                );
            }
        }
    }

    #[test]
    fn embedding_lookup_and_scatter() {
        let mut rng = EctRng::seed_from(3);
        let mut emb = Embedding::new(5, 3, &mut rng);
        let out = emb.forward(&[1, 1, 4]);
        assert_eq!(out.row(0), out.row(1));
        let mut grad = Matrix::zeros(3, 3);
        grad.row_mut(0).copy_from_slice(&[1.0, 0.0, 0.0]);
        grad.row_mut(1).copy_from_slice(&[1.0, 0.0, 0.0]);
        grad.row_mut(2).copy_from_slice(&[0.0, 2.0, 0.0]);
        emb.backward(&grad);
        let mut table_grad = Matrix::zeros(5, 3);
        emb.for_each_param(&mut |p| table_grad = p.grad.clone());
        // Row 1 was used twice: gradients accumulate.
        assert_eq!(table_grad.row(1), &[2.0, 0.0, 0.0]);
        assert_eq!(table_grad.row(4), &[0.0, 2.0, 0.0]);
        assert_eq!(table_grad.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn embedding_rejects_oov() {
        let mut rng = EctRng::seed_from(4);
        let mut emb = Embedding::new(3, 2, &mut rng);
        let _ = emb.forward(&[3]);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // Ordering preserved.
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = a.map(|v| v + 100.0);
        let diff = softmax_rows(&a).sub(&softmax_rows(&b)).max_abs();
        assert!(diff < 1e-12);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -1.2, 0.8]]);
        let probs = softmax_rows(&logits);
        // Loss: weighted sum of probabilities with fixed weights.
        let w = [0.2, -0.7, 1.3];
        let grad_probs = Matrix::row_vector(&w);
        let analytic = softmax_backward(&probs, &grad_probs);
        let eps = 1e-6;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp[(0, c)] += eps;
            let mut lm = logits.clone();
            lm[(0, c)] -= eps;
            let f = |m: &Matrix| -> f64 {
                softmax_rows(m)
                    .row(0)
                    .iter()
                    .zip(&w)
                    .map(|(&p, &wi)| p * wi)
                    .sum()
            };
            let num = (f(&lp) - f(&lm)) / (2.0 * eps);
            assert!((analytic[(0, c)] - num).abs() < 1e-6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn softmax_always_sums_to_one(vals in proptest::collection::vec(-20.0f64..20.0, 2..8)) {
            let m = Matrix::row_vector(&vals);
            let p = softmax_rows(&m);
            let s: f64 = p.row(0).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }

        #[test]
        fn relu_output_non_negative(vals in proptest::collection::vec(-5.0f64..5.0, 1..16)) {
            let mut act = Activation::new(ActivationKind::Relu);
            let y = act.forward(&Matrix::row_vector(&vals));
            prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        }
    }
}
