//! Scalar losses with analytic gradients.

use crate::matrix::Matrix;

/// Mean-squared-error loss.
///
/// Returns `(loss, dL/dpred)` where the loss is averaged over all elements,
/// matching the paper's `L(·,·)` "average MSE loss over all pairs" (Eq. 18).
///
/// # Panics
///
/// Panics on shape mismatch or empty inputs.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shapes");
    assert!(!pred.is_empty(), "mse of empty matrices");
    let n = pred.len() as f64;
    let diff = pred.sub(target);
    let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
    let grad = diff.map(|d| 2.0 * d / n);
    (loss, grad)
}

/// Binary cross-entropy on probabilities in `(0, 1)`.
///
/// Returns `(loss, dL/dpred)` averaged over all elements. Probabilities are
/// clamped away from {0, 1} for numerical stability.
///
/// # Panics
///
/// Panics on shape mismatch or empty inputs.
pub fn binary_cross_entropy(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "bce shapes");
    assert!(!pred.is_empty(), "bce of empty matrices");
    const EPS: f64 = 1e-12;
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for i in 0..pred.len() {
        let p = pred.as_slice()[i].clamp(EPS, 1.0 - EPS);
        let y = target.as_slice()[i];
        loss += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
        grad.as_mut_slice()[i] = (p - y) / (p * (1.0 - p)) / n;
    }
    (loss / n, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`.
///
/// Quadratic within `|err| <= delta`, linear outside — used to robustify the
/// critic regression in PPO against reward spikes.
///
/// # Panics
///
/// Panics on shape mismatch, empty inputs or non-positive `delta`.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f64) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "huber shapes");
    assert!(!pred.is_empty(), "huber of empty matrices");
    assert!(delta > 0.0, "huber delta must be positive");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for i in 0..pred.len() {
        let e = pred.as_slice()[i] - target.as_slice()[i];
        if e.abs() <= delta {
            loss += 0.5 * e * e;
            grad.as_mut_slice()[i] = e / n;
        } else {
            loss += delta * (e.abs() - 0.5 * delta);
            grad.as_mut_slice()[i] = delta * e.signum() / n;
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_inputs_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let (loss, grad) = mse(&a, &a);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Matrix::from_rows(&[&[3.0, 0.0]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.0).abs() < 1e-12); // (4 + 0)/2
        assert!((grad[(0, 0)] - 2.0).abs() < 1e-12); // 2*2/2
        assert_eq!(grad[(0, 1)], 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[&[0.3, -1.0, 2.5]]);
        let target = Matrix::from_rows(&[&[0.0, 1.0, 2.0]]);
        let (_, grad) = mse(&pred, &target);
        let eps = 1e-6;
        for c in 0..3 {
            let mut p = pred.clone();
            p[(0, c)] += eps;
            let (up, _) = mse(&p, &target);
            p[(0, c)] -= 2.0 * eps;
            let (down, _) = mse(&p, &target);
            let num = (up - down) / (2.0 * eps);
            assert!((grad[(0, c)] - num).abs() < 1e-6);
        }
    }

    #[test]
    fn bce_perfect_prediction_is_near_zero() {
        let pred = Matrix::from_rows(&[&[0.9999, 0.0001]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (loss, _) = binary_cross_entropy(&pred, &target);
        assert!(loss < 1e-3);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[&[0.3, 0.8]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (_, grad) = binary_cross_entropy(&pred, &target);
        let eps = 1e-7;
        for c in 0..2 {
            let mut p = pred.clone();
            p[(0, c)] += eps;
            let (up, _) = binary_cross_entropy(&p, &target);
            p[(0, c)] -= 2.0 * eps;
            let (down, _) = binary_cross_entropy(&p, &target);
            let num = (up - down) / (2.0 * eps);
            assert!((grad[(0, c)] - num).abs() < 1e-4, "col {c}");
        }
    }

    #[test]
    fn bce_handles_saturated_probabilities() {
        let pred = Matrix::from_rows(&[&[1.0, 0.0]]);
        let target = Matrix::from_rows(&[&[0.0, 1.0]]);
        let (loss, grad) = binary_cross_entropy(&pred, &target);
        assert!(loss.is_finite());
        assert!(grad.all_finite());
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        let target = Matrix::from_rows(&[&[0.0]]);
        let (small, _) = huber(&Matrix::from_rows(&[&[0.5]]), &target, 1.0);
        assert!((small - 0.125).abs() < 1e-12);
        let (large, _) = huber(&Matrix::from_rows(&[&[3.0]]), &target, 1.0);
        assert!((large - 2.5).abs() < 1e-12); // 1*(3 - 0.5)
    }

    #[test]
    fn huber_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[&[0.4, -2.5]]);
        let target = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (_, grad) = huber(&pred, &target, 1.0);
        let eps = 1e-6;
        for c in 0..2 {
            let mut p = pred.clone();
            p[(0, c)] += eps;
            let (up, _) = huber(&p, &target, 1.0);
            p[(0, c)] -= 2.0 * eps;
            let (down, _) = huber(&p, &target, 1.0);
            let num = (up - down) / (2.0 * eps);
            assert!((grad[(0, c)] - num).abs() < 1e-6);
        }
    }
}
