//! Dense row-major `f64` matrix.
//!
//! The networks in this workspace are tiny (≤ a few hundred units), so a
//! straightforward `Vec<f64>`-backed matrix with cache-friendly row-major
//! loops is all the linear algebra we need. Operations validate shapes
//! (C-VALIDATE) and panic on mismatch — a shape error is always a programming
//! bug, never a runtime condition.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use ect_nn::matrix::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Wraps an existing buffer as a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: size mismatch");
        Self { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat view of the underlying buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of the underlying buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies the given rows into a new matrix (used for minibatching).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// `selfᵀ × rhs` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "transpose_matmul: {}x{} ᵀ× {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &a_ri) in a_row.iter().enumerate() {
                if a_ri == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b_rj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ri * b_rj;
                }
            }
        }
        out
    }

    /// `self × rhsᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose: {}x{} × {}x{}ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let dot: f64 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out[(i, j)] = dot;
            }
        }
        out
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise sum; returns a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference; returns a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product; returns a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Applies `f` pairwise; returns a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_with shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place element-wise `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// New matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds a `1 × cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is `1 × self.cols`.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Column-wise sum, producing a `1 × cols` row vector.
    pub fn col_sum(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of empty matrix");
        self.sum() / self.len() as f64
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Concatenates matrices horizontally (same row count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn hconcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hconcat of nothing");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hconcat row mismatch");
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Splits into horizontal blocks of the given widths (inverse of
    /// [`Matrix::hconcat`]).
    ///
    /// # Panics
    ///
    /// Panics unless the widths sum to `self.cols`.
    pub fn hsplit(&self, widths: &[usize]) -> Vec<Matrix> {
        assert_eq!(
            widths.iter().sum::<usize>(),
            self.cols,
            "hsplit widths must sum to cols"
        );
        let mut out: Vec<Matrix> = widths
            .iter()
            .map(|&w| Matrix::zeros(self.rows, w))
            .collect();
        for r in 0..self.rows {
            let mut offset = 0;
            for (part, &w) in out.iter_mut().zip(widths) {
                part.row_mut(r)
                    .copy_from_slice(&self.row(r)[offset..offset + w]);
                offset += w;
            }
        }
        out
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Cheap deterministic pseudo-values; good enough for algebra tests.
        let data = (0..rows * cols)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn identity_is_neutral() {
        let a = mat(3, 3, 1);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = mat(4, 3, 2);
        let b = mat(4, 5, 3);
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
        let c = mat(6, 3, 4);
        assert_eq!(a.matmul_transpose(&c), a.matmul(&c.transpose()));
    }

    #[test]
    fn transpose_is_involution() {
        let a = mat(3, 7, 5);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hconcat_hsplit_round_trip() {
        let a = mat(3, 2, 6);
        let b = mat(3, 4, 7);
        let joined = Matrix::hconcat(&[&a, &b]);
        assert_eq!(joined.shape(), (3, 6));
        let parts = joined.hsplit(&[2, 4]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn col_sum_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.col_sum(), Matrix::row_vector(&[9.0, 12.0]));
    }

    #[test]
    fn bias_broadcast_adds_to_every_row() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&Matrix::row_vector(&[1.0, -1.0]));
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn gather_rows_picks_rows() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[3, 1]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn scalar_helpers() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(a.map(|v| v * v), Matrix::from_rows(&[&[1.0, 4.0]]));
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[11.0, 22.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[9.0, 18.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[10.0, 40.0]]));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.all_finite());
        a[(1, 1)] = f64::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_rejects_bad_shapes() {
        let _ = mat(2, 3, 0).matmul(&mat(2, 3, 1));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matmul_is_associative(seed in 0u64..1000) {
            let a = mat(3, 4, seed);
            let b = mat(4, 5, seed + 1);
            let c = mat(5, 2, seed + 2);
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            let diff = left.sub(&right).max_abs();
            prop_assert!(diff < 1e-9, "diff {diff}");
        }

        #[test]
        fn matmul_distributes_over_add(seed in 0u64..1000) {
            let a = mat(3, 4, seed);
            let b = mat(4, 2, seed + 1);
            let c = mat(4, 2, seed + 2);
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            prop_assert!(left.sub(&right).max_abs() < 1e-9);
        }

        #[test]
        fn add_scaled_matches_add(seed in 0u64..1000) {
            let a = mat(3, 3, seed);
            let b = mat(3, 3, seed + 1);
            let mut x = a.clone();
            x.add_scaled(&b, 1.0);
            prop_assert!(x.sub(&a.add(&b)).max_abs() < 1e-12);
        }

        #[test]
        fn hsplit_parts_have_requested_widths(w1 in 1usize..5, w2 in 1usize..5, rows in 1usize..5) {
            let m = mat(rows, w1 + w2, 9);
            let parts = m.hsplit(&[w1, w2]);
            prop_assert_eq!(parts[0].shape(), (rows, w1));
            prop_assert_eq!(parts[1].shape(), (rows, w2));
        }
    }
}
