//! Neural Collaborative Filtering (He et al., WWW 2017).
//!
//! The paper uses NCF twice: to pre-label charging history into
//! *Always Charge* / *Incentive Charge* strata (via predicted ratings), and as
//! the base model of the OR/IPS/DR uplift baselines and the two ECT-Price
//! tasks. This is the standard two-path architecture: a GMF path
//! (element-wise product of embeddings) and an MLP path (concatenated
//! embeddings through a feed-forward tower), fused by a linear head with a
//! sigmoid output.
//!
//! Here "users" are charging stations and "items" are time-slot feature ids
//! (e.g. hour-of-week buckets).

use crate::layers::{Activation, ActivationKind, Embedding, Linear};
use crate::matrix::Matrix;
use crate::mlp::Mlp;
use crate::param::{Param, Parameterized};
use ect_types::rng::EctRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Ncf`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NcfConfig {
    /// Number of distinct "users" (charging stations).
    pub num_users: usize,
    /// Number of distinct "items" (time-slot buckets).
    pub num_items: usize,
    /// Embedding width shared by both paths.
    pub embed_dim: usize,
    /// Hidden widths of the MLP tower (input is `2 × embed_dim`).
    pub mlp_hidden: Vec<usize>,
}

impl NcfConfig {
    /// A small default suitable for the 12-station campus dataset.
    pub fn small(num_users: usize, num_items: usize) -> Self {
        Self {
            num_users,
            num_items,
            embed_dim: 8,
            mlp_hidden: vec![16, 8],
        }
    }
}

/// The NCF rating model: `rating = σ(W [gmf ; mlp] + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ncf {
    gmf_user: Embedding,
    gmf_item: Embedding,
    mlp_user: Embedding,
    mlp_item: Embedding,
    tower: Mlp,
    head: Linear,
    out_act: Activation,
    embed_dim: usize,
    tower_out: usize,
    #[serde(skip)]
    cache: Option<GmfCache>,
}

#[derive(Debug, Clone)]
struct GmfCache {
    gmf_user_vecs: Matrix,
    gmf_item_vecs: Matrix,
}

impl Ncf {
    /// Creates a model with fresh random parameters.
    ///
    /// # Panics
    ///
    /// Panics if any dimension in the config is zero.
    pub fn new(config: &NcfConfig, rng: &mut EctRng) -> Self {
        assert!(config.num_users > 0, "num_users must be positive");
        assert!(config.num_items > 0, "num_items must be positive");
        assert!(config.embed_dim > 0, "embed_dim must be positive");
        let d = config.embed_dim;
        let mut tower_widths = vec![2 * d];
        tower_widths.extend_from_slice(&config.mlp_hidden);
        let tower_out = *tower_widths.last().expect("tower widths");
        Self {
            gmf_user: Embedding::new(config.num_users, d, rng),
            gmf_item: Embedding::new(config.num_items, d, rng),
            mlp_user: Embedding::new(config.num_users, d, rng),
            mlp_item: Embedding::new(config.num_items, d, rng),
            tower: Mlp::new(&tower_widths, ActivationKind::Relu, rng),
            head: Linear::new(d + tower_out, 1, rng),
            out_act: Activation::new(ActivationKind::Sigmoid),
            embed_dim: d,
            tower_out,
            cache: None,
        }
    }

    /// Training-mode forward pass; returns `batch × 1` ratings in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `users` and `items` lengths differ or ids are out of range.
    pub fn forward(&mut self, users: &[usize], items: &[usize]) -> Matrix {
        assert_eq!(users.len(), items.len(), "ncf batch mismatch");
        let gu = self.gmf_user.forward(users);
        let gi = self.gmf_item.forward(items);
        let gmf = gu.hadamard(&gi);
        let mu = self.mlp_user.forward(users);
        let mi = self.mlp_item.forward(items);
        let tower_out = self.tower.forward(&Matrix::hconcat(&[&mu, &mi]));
        let fused = Matrix::hconcat(&[&gmf, &tower_out]);
        let logits = self.head.forward(&fused);
        let out = self.out_act.forward(&logits);
        self.cache = Some(GmfCache {
            gmf_user_vecs: gu,
            gmf_item_vecs: gi,
        });
        out
    }

    /// Inference-mode forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `users` and `items` lengths differ or ids are out of range.
    pub fn infer(&self, users: &[usize], items: &[usize]) -> Matrix {
        assert_eq!(users.len(), items.len(), "ncf batch mismatch");
        let gu = self.gmf_user.infer(users);
        let gi = self.gmf_item.infer(items);
        let gmf = gu.hadamard(&gi);
        let mu = self.mlp_user.infer(users);
        let mi = self.mlp_item.infer(items);
        let tower_out = self.tower.infer(&Matrix::hconcat(&[&mu, &mi]));
        let fused = Matrix::hconcat(&[&gmf, &tower_out]);
        self.out_act.infer(&self.head.infer(&fused))
    }

    /// Convenience scalar prediction for a single (user, item) pair.
    pub fn predict_one(&self, user: usize, item: usize) -> f64 {
        self.infer(&[user], &[item])[(0, 0)]
    }

    /// Backward pass from `dL/drating`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Ncf::forward`].
    pub fn backward(&mut self, grad_out: &Matrix) {
        let cache = self.cache.take().expect("Ncf::backward before forward");
        let grad_logits = self.out_act.backward(grad_out);
        let grad_fused = self.head.backward(&grad_logits);
        let parts = grad_fused.hsplit(&[self.embed_dim, self.tower_out]);
        let (grad_gmf, grad_tower) = (&parts[0], &parts[1]);

        // GMF path: gmf = gu ⊙ gi.
        self.gmf_user
            .backward(&grad_gmf.hadamard(&cache.gmf_item_vecs));
        self.gmf_item
            .backward(&grad_gmf.hadamard(&cache.gmf_user_vecs));

        // MLP path.
        let grad_concat = self.tower.backward(grad_tower);
        let emb_parts = grad_concat.hsplit(&[self.embed_dim, self.embed_dim]);
        self.mlp_user.backward(&emb_parts[0]);
        self.mlp_item.backward(&emb_parts[1]);
    }
}

impl Parameterized for Ncf {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gmf_user.for_each_param(f);
        self.gmf_item.for_each_param(f);
        self.mlp_user.for_each_param(f);
        self.mlp_item.for_each_param(f);
        self.tower.for_each_param(f);
        self.head.for_each_param(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_difference;
    use crate::loss::mse;
    use crate::optim::{Adam, AdamConfig};

    fn tiny() -> (Ncf, EctRng) {
        let mut rng = EctRng::seed_from(21);
        let model = Ncf::new(
            &NcfConfig {
                num_users: 4,
                num_items: 6,
                embed_dim: 3,
                mlp_hidden: vec![5, 4],
            },
            &mut rng,
        );
        (model, rng)
    }

    #[test]
    fn outputs_are_probabilities() {
        let (mut m, _) = tiny();
        let y = m.forward(&[0, 1, 2], &[0, 3, 5]);
        assert_eq!(y.shape(), (3, 1));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn infer_matches_forward() {
        let (mut m, _) = tiny();
        let users = [0, 3, 1];
        let items = [2, 4, 0];
        let a = m.forward(&users, &items);
        let b = m.infer(&users, &items);
        assert!(a.sub(&b).max_abs() < 1e-12);
        assert!((m.predict_one(0, 2) - a[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let (mut m, _) = tiny();
        let users = [0, 1, 2, 3];
        let items = [5, 0, 3, 1];
        let target = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0], &[0.0]]);

        let pred = m.forward(&users, &items);
        let (_, grad) = mse(&pred, &target);
        m.backward(&grad);

        let err = finite_difference(
            &mut m,
            |model| mse(&model.infer(&users, &items), &target).0,
            1e-6,
        );
        assert!(err < 1e-5, "max grad error {err}");
    }

    #[test]
    fn learns_a_preference_table() {
        // Users 0,1 like even items; users 2,3 like odd items.
        let (mut m, _) = tiny();
        let mut users = Vec::new();
        let mut items = Vec::new();
        let mut targets = Vec::new();
        for u in 0..4 {
            for i in 0..6 {
                users.push(u);
                items.push(i);
                let like = (u < 2) == (i % 2 == 0);
                targets.push(if like { 1.0 } else { 0.0 });
            }
        }
        let target = Matrix::from_vec(targets.len(), 1, targets.clone());
        let mut opt = Adam::new(AdamConfig {
            learning_rate: 0.05,
            weight_decay: 0.0,
            ..AdamConfig::default()
        });
        let mut loss_final = f64::MAX;
        for _ in 0..400 {
            let pred = m.forward(&users, &items);
            let (loss, grad) = mse(&pred, &target);
            loss_final = loss;
            m.backward(&grad);
            opt.step(&mut m);
        }
        assert!(loss_final < 0.02, "ncf training loss {loss_final}");
        assert!(m.predict_one(0, 0) > 0.8);
        assert!(m.predict_one(0, 1) < 0.2);
        assert!(m.predict_one(3, 1) > 0.8);
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn rejects_mismatched_batches() {
        let (mut m, _) = tiny();
        let _ = m.forward(&[0, 1], &[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = EctRng::seed_from(77);
        let mut r2 = EctRng::seed_from(77);
        let cfg = NcfConfig::small(3, 5);
        let a = Ncf::new(&cfg, &mut r1);
        let b = Ncf::new(&cfg, &mut r2);
        assert!((a.predict_one(1, 2) - b.predict_one(1, 2)).abs() < 1e-15);
    }
}
